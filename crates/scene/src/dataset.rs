//! Dataset profiles.
//!
//! One profile per dataset in Section VI of the paper:
//!
//! | # | name    | source | setting | resolution | people | ground truth |
//! |---|---------|--------|---------|-----------|--------|--------------|
//! | 1 | lab     | EPFL   | indoor, empty room | 360×288 | 6 | every 25 frames |
//! | 2 | chap    | Graz   | indoor, furniture clutter | 1024×768 | 4–6 | every 10 frames |
//! | 3 | terrace | EPFL   | outdoor terrace | 360×288 | 8 | every 25 frames |

/// Identifies one of the paper's three datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Dataset #1 — EPFL "lab sequences" (indoor, clean).
    Lab,
    /// Dataset #2 — Graz "chap" (indoor, cluttered, high resolution).
    Chap,
    /// Dataset #3 — EPFL "terrace sequences" (outdoor).
    Terrace,
}

impl DatasetId {
    /// All three datasets in paper order.
    pub const ALL: [DatasetId; 3] = [DatasetId::Lab, DatasetId::Chap, DatasetId::Terrace];

    /// The paper's dataset number (1-based).
    pub fn number(&self) -> usize {
        match self {
            DatasetId::Lab => 1,
            DatasetId::Chap => 2,
            DatasetId::Terrace => 3,
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetId::Lab => write!(f, "lab"),
            DatasetId::Chap => write!(f, "chap"),
            DatasetId::Terrace => write!(f, "terrace"),
        }
    }
}

/// Full generation parameters of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Which dataset this profile reproduces.
    pub id: DatasetId,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of people walking in the scene.
    pub num_people: usize,
    /// Indoor scenes have walls; outdoor have sky.
    pub indoor: bool,
    /// Number of furniture clutter items (dataset #2 only).
    pub clutter_items: usize,
    /// Global illumination gain applied to rendered frames.
    pub brightness: f32,
    /// Sensor noise amplitude.
    pub noise: f32,
    /// Ground truth cadence in frames (25 for EPFL, 10 for Graz).
    pub gt_interval: usize,
    /// Side of the square walkable arena in meters.
    pub arena: f64,
    /// Total frames per feed (~3000 in the paper).
    pub total_frames: usize,
    /// Leading frames used for training (1000 in the paper).
    pub train_frames: usize,
    /// Base RNG seed; camera index and frame offsets derive from it.
    pub seed: u64,
}

impl DatasetProfile {
    /// Dataset #1 — "lab".
    pub fn lab() -> DatasetProfile {
        DatasetProfile {
            id: DatasetId::Lab,
            width: 360,
            height: 288,
            num_people: 6,
            indoor: true,
            clutter_items: 0,
            brightness: 0.95,
            noise: 0.02,
            gt_interval: 25,
            arena: 9.0,
            total_frames: 3000,
            train_frames: 1000,
            seed: 101,
        }
    }

    /// Dataset #2 — "chap".
    pub fn chap() -> DatasetProfile {
        DatasetProfile {
            id: DatasetId::Chap,
            width: 1024,
            height: 768,
            num_people: 5,
            indoor: true,
            clutter_items: 7,
            brightness: 0.80,
            noise: 0.03,
            gt_interval: 10,
            arena: 8.0,
            total_frames: 3000,
            train_frames: 1000,
            seed: 202,
        }
    }

    /// Dataset #3 — "terrace".
    pub fn terrace() -> DatasetProfile {
        DatasetProfile {
            id: DatasetId::Terrace,
            width: 360,
            height: 288,
            num_people: 8,
            indoor: false,
            clutter_items: 0,
            brightness: 1.15,
            noise: 0.025,
            gt_interval: 25,
            arena: 11.0,
            total_frames: 3000,
            train_frames: 1000,
            seed: 303,
        }
    }

    /// Profile for a dataset id.
    pub fn for_id(id: DatasetId) -> DatasetProfile {
        match id {
            DatasetId::Lab => DatasetProfile::lab(),
            DatasetId::Chap => DatasetProfile::chap(),
            DatasetId::Terrace => DatasetProfile::terrace(),
        }
    }

    /// A miniature variant (small frames, few frames) for fast tests.
    pub fn miniature(id: DatasetId) -> DatasetProfile {
        let mut p = DatasetProfile::for_id(id);
        p.width = 180;
        p.height = 144;
        p.total_frames = 100;
        p.train_frames = 40;
        p.gt_interval = 5;
        p
    }

    /// Number of test frames (after the training prefix).
    pub fn test_frames(&self) -> usize {
        self.total_frames - self.train_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resolutions() {
        assert_eq!(
            (DatasetProfile::lab().width, DatasetProfile::lab().height),
            (360, 288)
        );
        assert_eq!(
            (DatasetProfile::chap().width, DatasetProfile::chap().height),
            (1024, 768)
        );
        assert_eq!(
            (
                DatasetProfile::terrace().width,
                DatasetProfile::terrace().height
            ),
            (360, 288)
        );
    }

    #[test]
    fn gt_cadence_matches_paper() {
        assert_eq!(DatasetProfile::lab().gt_interval, 25);
        assert_eq!(DatasetProfile::chap().gt_interval, 10);
        assert_eq!(DatasetProfile::terrace().gt_interval, 25);
    }

    #[test]
    fn only_chap_has_clutter() {
        assert_eq!(DatasetProfile::lab().clutter_items, 0);
        assert!(DatasetProfile::chap().clutter_items > 0);
        assert_eq!(DatasetProfile::terrace().clutter_items, 0);
    }

    #[test]
    fn split_is_1000_train() {
        for id in DatasetId::ALL {
            let p = DatasetProfile::for_id(id);
            assert_eq!(p.train_frames, 1000);
            assert_eq!(p.test_frames(), 2000);
        }
    }

    #[test]
    fn ids_display_and_number() {
        assert_eq!(DatasetId::Lab.to_string(), "lab");
        assert_eq!(DatasetId::Chap.number(), 2);
        assert_eq!(DatasetId::ALL.len(), 3);
    }

    #[test]
    fn miniature_is_small() {
        let m = DatasetProfile::miniature(DatasetId::Lab);
        assert!(m.width < 360 && m.total_frames <= 100);
        assert_eq!(m.id, DatasetId::Lab);
    }
}
