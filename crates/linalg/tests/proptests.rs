//! Property-based tests for the linear-algebra kernels.

use eecs_linalg::eig::symmetric_eigen;
use eecs_linalg::qr::householder_qr;
use eecs_linalg::solve::{invert, Lu};
use eecs_linalg::svd::thin_svd;
use eecs_linalg::Mat;
use proptest::prelude::*;

/// Random small matrix strategy.
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-3.0..3.0f64, rows * cols).prop_map(move |v| Mat::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(a in mat_strategy(3, 4), b in mat_strategy(4, 2), c in mat_strategy(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_of_product(a in mat_strategy(3, 4), b in mat_strategy(4, 3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn qr_reconstruction_and_orthogonality(a in mat_strategy(6, 4)) {
        let qr = householder_qr(&a).unwrap();
        prop_assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-9));
        let gram = qr.q.transpose_matmul(&qr.q).unwrap();
        prop_assert!(gram.approx_eq(&Mat::identity(4), 1e-9));
    }

    #[test]
    fn svd_singular_values_bound_operator_norm(a in mat_strategy(4, 5)) {
        let svd = thin_svd(&a);
        // ‖A v‖ ≤ σ₁ ‖v‖ for a few probe vectors.
        for probe in 0..3 {
            let v: Vec<f64> = (0..5).map(|i| ((i + probe) as f64 * 0.7).sin()).collect();
            let av = a.matvec(&v);
            let av_norm: f64 = av.iter().map(|x| x * x).sum::<f64>().sqrt();
            let v_norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!(av_norm <= svd.singular_values[0] * v_norm + 1e-9);
        }
    }

    #[test]
    fn eigen_of_gram_is_psd(a in mat_strategy(5, 3)) {
        let gram = a.transpose_matmul(&a).unwrap();
        let e = symmetric_eigen(&gram).unwrap();
        prop_assert!(e.eigenvalues.iter().all(|&l| l >= -1e-9));
        prop_assert!(e.reconstruct().approx_eq(&gram, 1e-8));
    }

    #[test]
    fn lu_solve_consistent_with_inverse(mut a in mat_strategy(4, 4), b in prop::collection::vec(-2.0..2.0f64, 4)) {
        // Make the matrix comfortably invertible.
        for i in 0..4 {
            let v = a[(i, i)] + 5.0;
            a[(i, i)] = v;
        }
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let inv = invert(&a).unwrap();
        let x2 = inv.matvec(&b);
        for (p, q) in x.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-7);
        }
        // And the solution actually solves the system.
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn determinant_of_product(a in mat_strategy(3, 3), b in mat_strategy(3, 3)) {
        let shift = |mut m: Mat| { for i in 0..3 { let v = m[(i, i)] + 4.0; m[(i, i)] = v; } m };
        let (a, b) = (shift(a), shift(b));
        let da = Lu::decompose(&a).unwrap().determinant();
        let db = Lu::decompose(&b).unwrap().determinant();
        let dab = Lu::decompose(&a.matmul(&b)).unwrap().determinant();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }
}
