//! Householder QR factorization.
//!
//! QR is used in two places in the reproduction: orthonormalizing PCA bases
//! before placing them on the Grassmann manifold (Section III of the paper),
//! and as a building block for least-squares homography fitting.

use crate::mat::Mat;
use crate::{LinalgError, Result};

/// The thin QR factorization `A = Q R` of an `m × n` matrix with `m ≥ n`:
/// `Q` is `m × n` with orthonormal columns and `R` is `n × n` upper
/// triangular.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, qr::householder_qr};
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]);
/// let qr = householder_qr(&a).unwrap();
/// let recon = qr.q.matmul(&qr.r);
/// assert!(recon.approx_eq(&a, 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// `m × n` matrix with orthonormal columns.
    pub q: Mat,
    /// `n × n` upper-triangular factor.
    pub r: Mat,
}

/// Computes the thin QR factorization of `a` using Householder reflections.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] when `a` has more columns than
/// rows (the thin factorization is undefined there).
pub fn householder_qr(a: &Mat) -> Result<QrDecomposition> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "thin QR requires rows >= cols, got {m}x{n}"
        )));
    }
    // Work on a full m×m accumulation of Q and an m×n copy of A.
    let mut r = a.clone();
    let mut q = Mat::identity(m);

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut v = vec![0.0; m - k];
        for i in k..m {
            v[i - k] = r[(i, k)];
        }
        let alpha = -v[0].signum() * crate::mat::norm(&v);
        if alpha == 0.0 {
            continue; // column already zero below the diagonal
        }
        v[0] -= alpha;
        let vnorm = crate::mat::norm(&v);
        if vnorm == 0.0 {
            continue;
        }
        for x in &mut v {
            *x /= vnorm;
        }
        // Apply H = I - 2 v vᵀ to R (rows k..m) and accumulate into Q.
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * r[(i, j)];
            }
            for i in k..m {
                r[(i, j)] -= 2.0 * v[i - k] * s;
            }
        }
        for j in 0..m {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * q[(i, j)];
            }
            for i in k..m {
                q[(i, j)] -= 2.0 * v[i - k] * s;
            }
        }
    }
    // Q accumulated as the product of reflectors applied to I gives Qᵀ; the
    // thin factors are the first n columns of Qᵀᵀ = Q and the top n×n of R.
    let q_full = q.transpose();
    let q_thin = q_full.submatrix(0, 0, m, n);
    let mut r_thin = r.submatrix(0, 0, n, n);
    // Force exact zeros below the diagonal (they are ~1e-17 garbage).
    for i in 0..n {
        for j in 0..i {
            r_thin[(i, j)] = 0.0;
        }
    }
    Ok(QrDecomposition {
        q: q_thin,
        r: r_thin,
    })
}

/// Returns an orthonormal basis for the column space of `a` (the `Q` factor),
/// dropping columns whose `R` diagonal is below `tol` (rank deficiency).
///
/// # Errors
///
/// Propagates errors from [`householder_qr`].
pub fn orthonormal_columns(a: &Mat, tol: f64) -> Result<Mat> {
    let qr = householder_qr(a)?;
    let keep: Vec<usize> = (0..qr.r.rows())
        .filter(|&i| qr.r[(i, i)].abs() > tol)
        .collect();
    let mut out = Mat::zeros(a.rows(), keep.len());
    for (dst, &src) in keep.iter().enumerate() {
        out.set_col(dst, &qr.q.col(src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal(q: &Mat, tol: f64) {
        let gram = q.transpose_matmul(q).unwrap();
        assert!(
            gram.approx_eq(&Mat::identity(q.cols()), tol),
            "columns not orthonormal: {gram:?}"
        );
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Mat::from_rows(&[
            &[4.0, 1.0, 2.0],
            &[2.0, 3.0, 0.0],
            &[0.0, 1.0, 5.0],
            &[1.0, 1.0, 1.0],
        ]);
        let qr = householder_qr(&a).unwrap();
        assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-12));
        assert_orthonormal(&qr.q, 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.r[(1, 0)], 0.0);
    }

    #[test]
    fn qr_of_identity() {
        let a = Mat::identity(3);
        let qr = householder_qr(&a).unwrap();
        assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-14));
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(householder_qr(&a).is_err());
    }

    #[test]
    fn rank_deficient_basis_is_smaller() {
        // Second column is twice the first.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let q = orthonormal_columns(&a, 1e-9).unwrap();
        assert_eq!(q.cols(), 1);
        assert_orthonormal(&q, 1e-12);
    }

    #[test]
    fn random_matrices_roundtrip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let m = rng.random_range(3..10usize);
            let n = rng.random_range(1..=m);
            let a = Mat::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0));
            let qr = householder_qr(&a).unwrap();
            assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-10));
            assert_orthonormal(&qr.q, 1e-10);
        }
    }
}
