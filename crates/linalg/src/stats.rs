//! Sample statistics and the Mahalanobis distance.
//!
//! Section IV-C of the paper verifies homography-matched detections using
//! the Mahalanobis distance between PCA-reduced mean-color features.

use crate::mat::Mat;
use crate::solve::Cholesky;
use crate::{LinalgError, Result};

/// Sample mean of the rows of `data`.
///
/// # Panics
///
/// Panics if `data` has no rows.
pub fn row_mean(data: &Mat) -> Vec<f64> {
    assert!(data.rows() > 0, "mean of empty data");
    let (k, n) = data.shape();
    let mut mean = vec![0.0; n];
    for row in data.iter_rows() {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= k as f64;
    }
    mean
}

/// Unbiased sample covariance of the rows of `data` (`samples × features`).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] for fewer than 2 samples.
pub fn covariance(data: &Mat) -> Result<Mat> {
    let (k, n) = data.shape();
    if k < 2 {
        return Err(LinalgError::InvalidArgument(
            "covariance requires at least 2 samples".into(),
        ));
    }
    let mean = row_mean(data);
    let centered = Mat::from_fn(k, n, |i, j| data[(i, j)] - mean[j]);
    Ok(centered
        .transpose_matmul(&centered)?
        .scale(1.0 / (k as f64 - 1.0)))
}

/// A fitted Mahalanobis metric: a mean and the Cholesky factor of a
/// (regularized) covariance.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, stats::MahalanobisMetric};
///
/// let data = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0], &[0.5, 1.5]]);
/// let metric = MahalanobisMetric::fit(&data, 1e-6).unwrap();
/// let d = metric.distance(&[1.0, 1.0], &[1.0, 1.0]);
/// assert!(d.abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MahalanobisMetric {
    chol: Cholesky,
    dim: usize,
}

impl MahalanobisMetric {
    /// Fits the metric to `data` (`samples × features`), adding `ridge` to
    /// the covariance diagonal for numerical stability.
    ///
    /// # Errors
    ///
    /// Propagates covariance/Cholesky failures (e.g. not enough samples).
    pub fn fit(data: &Mat, ridge: f64) -> Result<MahalanobisMetric> {
        let mut cov = covariance(data)?;
        for i in 0..cov.rows() {
            cov[(i, i)] += ridge;
        }
        let chol = Cholesky::decompose(&cov)?;
        Ok(MahalanobisMetric {
            dim: cov.rows(),
            chol,
        })
    }

    /// Builds the metric directly from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Fails if `cov` is not symmetric positive definite.
    pub fn from_covariance(cov: &Mat) -> Result<MahalanobisMetric> {
        Ok(MahalanobisMetric {
            dim: cov.rows(),
            chol: Cholesky::decompose(cov)?,
        })
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mahalanobis distance `√((a-b)ᵀ Σ⁻¹ (a-b))` between two vectors.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from the fitted dimension.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        self.distance_squared(a, b).sqrt()
    }

    /// Squared Mahalanobis distance.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from the fitted dimension.
    pub fn distance_squared(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim, "dimension mismatch");
        assert_eq!(b.len(), self.dim, "dimension mismatch");
        let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        // dᵀ Σ⁻¹ d = ||L⁻¹ d||² via forward substitution.
        let mut y = vec![0.0; self.dim];
        for i in 0..self.dim {
            let mut s = diff[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.chol.l[(i, j)] * yj;
            }
            y[i] = s / self.chol.l[(i, i)];
        }
        y.iter().map(|v| v * v).sum()
    }
}

/// One-shot squared Mahalanobis distance under covariance `cov`.
///
/// # Errors
///
/// Fails if `cov` is not positive definite or dimensions disagree.
pub fn mahalanobis_squared(a: &[f64], b: &[f64], cov: &Mat) -> Result<f64> {
    if a.len() != cov.rows() || b.len() != cov.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "mahalanobis",
            lhs: (a.len(), 1),
            rhs: cov.shape(),
        });
    }
    Ok(MahalanobisMetric::from_covariance(cov)?.distance_squared(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_rows() {
        let data = Mat::from_rows(&[&[2.0, 3.0], &[2.0, 3.0]]);
        assert_eq!(row_mean(&data), vec![2.0, 3.0]);
    }

    #[test]
    fn covariance_of_identity_like_data() {
        // Two independent unit-variance dimensions.
        let data = Mat::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]);
        let cov = covariance(&data).unwrap();
        assert!((cov[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 2.0 / 3.0).abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn covariance_requires_two_samples() {
        assert!(covariance(&Mat::zeros(1, 3)).is_err());
    }

    #[test]
    fn identity_covariance_reduces_to_euclidean() {
        let metric = MahalanobisMetric::from_covariance(&Mat::identity(2)).unwrap();
        let d = metric.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_covariance_shrinks_distance() {
        // Variance 4 along x ⇒ distance along x is halved.
        let cov = Mat::from_diag(&[4.0, 1.0]);
        let metric = MahalanobisMetric::from_covariance(&cov).unwrap();
        let dx = metric.distance(&[0.0, 0.0], &[2.0, 0.0]);
        let dy = metric.distance(&[0.0, 0.0], &[0.0, 2.0]);
        assert!((dx - 1.0).abs() < 1e-12);
        assert!((dy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_equal() {
        let data = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0], &[0.5, 0.2]]);
        let metric = MahalanobisMetric::fit(&data, 1e-6).unwrap();
        let a = [0.3, 0.7];
        let b = [0.9, 0.1];
        assert!((metric.distance(&a, &b) - metric.distance(&b, &a)).abs() < 1e-12);
        assert_eq!(metric.distance(&a, &a), 0.0);
    }

    #[test]
    fn ridge_rescues_degenerate_covariance() {
        // All samples identical in dimension 1 ⇒ singular covariance;
        // the ridge keeps the metric usable.
        let data = Mat::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let metric = MahalanobisMetric::fit(&data, 1e-3).unwrap();
        assert!(metric.distance(&[0.0, 0.0], &[0.0, 1.0]).is_finite());
    }

    #[test]
    fn one_shot_matches_metric() {
        let cov = Mat::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let a = [1.0, 2.0];
        let b = [0.0, 0.0];
        let d1 = mahalanobis_squared(&a, &b, &cov).unwrap();
        let d2 = MahalanobisMetric::from_covariance(&cov)
            .unwrap()
            .distance_squared(&a, &b);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn one_shot_rejects_mismatched_dims() {
        let cov = Mat::identity(3);
        assert!(mahalanobis_squared(&[1.0], &[2.0], &cov).is_err());
    }

    #[test]
    fn triangle_inequality_samples() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let data = Mat::from_fn(30, 3, |_, _| rng.random_range(-1.0..1.0));
        let metric = MahalanobisMetric::fit(&data, 1e-6).unwrap();
        for _ in 0..50 {
            let a: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..1.0)).collect();
            let c: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..1.0)).collect();
            let ab = metric.distance(&a, &b);
            let bc = metric.distance(&b, &c);
            let ac = metric.distance(&a, &c);
            assert!(ac <= ab + bc + 1e-9);
        }
    }
}
