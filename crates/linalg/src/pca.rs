//! Principal component analysis.
//!
//! Section III of the paper projects the `k` key-frame feature vectors of a
//! video item (a `k × α` matrix) onto an `α × β` orthonormal basis that
//! maximizes variance. Because `α` (4180 in the paper) usually far exceeds
//! `k` (≈100 key frames), we use the Gram-matrix ("snapshot") method: the
//! eigendecomposition of the `k × k` Gram matrix yields the same leading
//! principal directions at a fraction of the cost of the `α × α` covariance.

use crate::eig::symmetric_eigen;
use crate::mat::Mat;
use crate::{LinalgError, Result};

/// A fitted PCA model.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, pca::Pca};
///
/// // Ten samples on a line in 3-D: exactly one meaningful component.
/// let data = Mat::from_fn(10, 3, |i, j| (i as f64) * (j as f64 + 1.0));
/// let pca = Pca::fit(&data, 1).unwrap();
/// assert_eq!(pca.basis().shape(), (3, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `α × β` orthonormal basis (columns = principal directions).
    basis: Mat,
    /// Variance captured by each component, non-increasing.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `n_components` components to row-major `data`
    /// (`samples × features`).
    ///
    /// Automatically selects the snapshot method when
    /// `features > samples`, and the covariance method otherwise.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] when `data` has fewer than 2 rows
    ///   or `n_components` exceeds `min(samples - 1, features)` or is zero.
    pub fn fit(data: &Mat, n_components: usize) -> Result<Pca> {
        let (k, alpha) = data.shape();
        if k < 2 {
            return Err(LinalgError::InvalidArgument(
                "PCA requires at least 2 samples".into(),
            ));
        }
        let max_components = (k - 1).min(alpha);
        if n_components == 0 || n_components > max_components {
            return Err(LinalgError::InvalidArgument(format!(
                "n_components must be in 1..={max_components}, got {n_components}"
            )));
        }

        // Center the data.
        let mean: Vec<f64> = (0..alpha)
            .map(|j| data.col(j).iter().sum::<f64>() / k as f64)
            .collect();
        let centered = Mat::from_fn(k, alpha, |i, j| data[(i, j)] - mean[j]);

        let (basis, explained_variance) = if alpha > k {
            snapshot_pca(&centered, n_components)?
        } else {
            covariance_pca(&centered, n_components)?
        };
        Ok(Pca {
            mean,
            basis,
            explained_variance,
        })
    }

    /// The `features × n_components` orthonormal basis.
    pub fn basis(&self) -> &Mat {
        &self.basis
    }

    /// Per-component captured variance, non-increasing.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// The feature mean subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Projects a single feature vector into the principal subspace.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature dimension.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "feature dimension mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        (0..self.basis.cols())
            .map(|c| {
                (0..centered.len())
                    .map(|r| self.basis[(r, c)] * centered[r])
                    .sum()
            })
            .collect()
    }

    /// Projects every row of `data` (`samples × features`), returning
    /// `samples × n_components`.
    pub fn project_rows(&self, data: &Mat) -> Mat {
        let rows: Vec<Vec<f64>> = data.iter_rows().map(|r| self.project(r)).collect();
        Mat::from_row_vecs(&rows)
    }

    /// Reconstructs an approximation of `x` from its projection.
    pub fn reconstruct(&self, projected: &[f64]) -> Vec<f64> {
        assert_eq!(
            projected.len(),
            self.basis.cols(),
            "component count mismatch"
        );
        let mut out = self.mean.clone();
        for (c, &p) in projected.iter().enumerate() {
            for (r, o) in out.iter_mut().enumerate() {
                *o += self.basis[(r, c)] * p;
            }
        }
        out
    }
}

/// Classic covariance-matrix PCA: eigendecompose the `α × α` covariance.
fn covariance_pca(centered: &Mat, n_components: usize) -> Result<(Mat, Vec<f64>)> {
    let k = centered.rows();
    let cov = centered
        .transpose_matmul(centered)?
        .scale(1.0 / (k as f64 - 1.0));
    let eig = symmetric_eigen(&cov)?;
    let basis = eig.eigenvectors.submatrix(0, 0, cov.rows(), n_components);
    let variance = eig.eigenvalues[..n_components].to_vec();
    Ok((basis, variance))
}

/// Snapshot PCA: eigendecompose the `k × k` Gram matrix `C Cᵀ / (k-1)`; the
/// principal directions are `Cᵀ u / √((k-1) λ)`.
fn snapshot_pca(centered: &Mat, n_components: usize) -> Result<(Mat, Vec<f64>)> {
    let (k, alpha) = centered.shape();
    let gram = centered
        .matmul(&centered.transpose())
        .scale(1.0 / (k as f64 - 1.0));
    let eig = symmetric_eigen(&gram)?;
    let mut basis = Mat::zeros(alpha, n_components);
    let mut variance = Vec::with_capacity(n_components);
    for c in 0..n_components {
        let lambda = eig.eigenvalues[c].max(0.0);
        variance.push(lambda);
        if lambda <= 1e-12 {
            // Degenerate direction: keep a zero column (caller may trim).
            continue;
        }
        let u = eig.eigenvectors.col(c);
        // direction = Cᵀ u / ||Cᵀ u||; the norm equals √((k-1)·λ).
        let mut dir = vec![0.0; alpha];
        for (r, &w) in u.iter().enumerate().take(k) {
            if w == 0.0 {
                continue;
            }
            for (d, &cval) in dir.iter_mut().zip(centered.row(r)) {
                *d += w * cval;
            }
        }
        crate::mat::normalize(&mut dir);
        basis.set_col(c, &dir);
    }
    Ok((basis, variance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn random_data(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
    }

    #[test]
    fn basis_is_orthonormal() {
        let data = random_data(20, 6, 1);
        let pca = Pca::fit(&data, 4).unwrap();
        let gram = pca.basis().transpose_matmul(pca.basis()).unwrap();
        assert!(gram.approx_eq(&Mat::identity(4), 1e-9));
    }

    #[test]
    fn variance_nonincreasing() {
        let data = random_data(30, 8, 2);
        let pca = Pca::fit(&data, 5).unwrap();
        for w in pca.explained_variance().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        // Data varies strongly along (1, 1)/√2, weakly along (1, -1)/√2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let big = rng.random_range(-10.0..10.0);
                let small = rng.random_range(-0.1..0.1);
                vec![big + small, big - small]
            })
            .collect();
        let data = Mat::from_row_vecs(&rows);
        let pca = Pca::fit(&data, 1).unwrap();
        let b = pca.basis().col(0);
        let along = (b[0] + b[1]).abs() / 2f64.sqrt();
        assert!(along > 0.999, "first PC should align with (1,1): {b:?}");
    }

    #[test]
    fn snapshot_matches_covariance_method() {
        // 5 samples, 3 features → covariance path; compare against snapshot
        // by transposing dimensions through a wide dataset with the same span.
        let data = random_data(12, 5, 4);
        let pca_cov = Pca::fit(&data, 3).unwrap();
        // Force the snapshot path with a wide matrix of identical content by
        // checking projection energy rather than raw basis equality (sign and
        // rotation of degenerate eigenvalues may differ).
        let wide = random_data(4, 9, 5);
        let pca_snap = Pca::fit(&wide, 3).unwrap();
        let gram = pca_snap.basis().transpose_matmul(pca_snap.basis()).unwrap();
        assert!(gram.approx_eq(&Mat::identity(3), 1e-9));
        // Explained variances from the covariance path equal eigenvalues of
        // the covariance matrix; verify total variance bound.
        let total_var: f64 = (0..data.cols())
            .map(|j| {
                let col = data.col(j);
                let m = col.iter().sum::<f64>() / col.len() as f64;
                col.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (col.len() as f64 - 1.0)
            })
            .sum();
        let captured: f64 = pca_cov.explained_variance().iter().sum();
        assert!(captured <= total_var + 1e-9);
    }

    #[test]
    fn project_reconstruct_roundtrip_on_subspace_data() {
        // Data lies exactly in a 2-D subspace of R^4; 2 components suffice.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let a = rng.random_range(-1.0..1.0);
                let b = rng.random_range(-1.0..1.0);
                vec![a, b, a + b, a - b]
            })
            .collect();
        let data = Mat::from_row_vecs(&rows);
        let pca = Pca::fit(&data, 2).unwrap();
        let x = data.row(0);
        let recon = pca.reconstruct(&pca.project(x));
        for (r, o) in recon.iter().zip(x) {
            assert!(
                (r - o).abs() < 1e-9,
                "reconstruction failed: {recon:?} vs {x:?}"
            );
        }
    }

    #[test]
    fn projection_of_mean_is_zero() {
        let data = random_data(10, 4, 7);
        let pca = Pca::fit(&data, 2).unwrap();
        let proj = pca.project(pca.mean());
        assert!(proj.iter().all(|p| p.abs() < 1e-12));
    }

    #[test]
    fn rejects_bad_arguments() {
        let data = random_data(5, 3, 8);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 4).is_err()); // > min(k-1, α) = 3
        assert!(Pca::fit(&Mat::zeros(1, 3), 1).is_err());
    }

    #[test]
    fn wide_data_uses_snapshot_and_is_consistent() {
        // 6 samples in R^50 — snapshot path.
        let data = random_data(6, 50, 9);
        let pca = Pca::fit(&data, 3).unwrap();
        assert_eq!(pca.basis().shape(), (50, 3));
        let gram = pca.basis().transpose_matmul(pca.basis()).unwrap();
        assert!(gram.approx_eq(&Mat::identity(3), 1e-9));
        // Projected variance along PC1 should equal the top eigenvalue.
        let proj = pca.project_rows(&data);
        let col = proj.col(0);
        let m = col.iter().sum::<f64>() / col.len() as f64;
        let var = col.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (col.len() as f64 - 1.0);
        assert!((var - pca.explained_variance()[0]).abs() < 1e-8 * var.max(1.0));
    }
}
