//! Linear solvers: LU with partial pivoting, matrix inversion, Cholesky.
//!
//! Used for inverting the color-feature covariance in the Mahalanobis
//! distance (Section IV-C of the paper) and for the normal equations of DLT
//! homography estimation.

use crate::mat::Mat;
use crate::{LinalgError, Result};

/// LU decomposition with partial pivoting: `P A = L U`.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, solve::Lu};
///
/// let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::decompose(&a).unwrap();
/// let x = lu.solve(&[5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Mat,
    /// Row permutation applied to the input.
    perm: Vec<usize>,
    /// Parity of the permutation, used by [`Lu::determinant`].
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn decompose(a: &Mat) -> Result<Lu> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::NotSquare { shape: (m, n) });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > pivot_val {
                    pivot_val = lu[(i, k)].abs();
                    pivot_row = i;
                }
            }
            if pivot_val <= 1e-13 * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with permuted b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * yj;
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.rows() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot occur once decomposition succeeded).
    pub fn inverse(&self) -> Result<Mat> {
        let n = self.lu.rows();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor.
    pub l: Mat,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    ///   non-positive.
    pub fn decompose(a: &Mat) -> Result<Cholesky> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::NotSquare { shape: (m, n) });
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` via the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * yj;
            }
            y[i] = s / self.l[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }
}

/// Convenience: inverts a square matrix.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] (or [`LinalgError::NotSquare`]) when the
/// matrix cannot be inverted.
pub fn invert(a: &Mat) -> Result<Mat> {
    Lu::decompose(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_linear_system() {
        let a = Mat::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let b = [5.0, 7.0, 13.0];
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::decompose(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn determinant_known() {
        let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.determinant() + 6.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let inv = invert(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Mat::identity(3), 1e-10));
        assert!(inv.matmul(&a).approx_eq(&Mat::identity(3), 1e-10));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::decompose(&a).unwrap();
        let recon = ch.l.matmul(&ch.l.transpose());
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = Mat::from_rows(&[&[5.0, 1.0, 0.5], &[1.0, 4.0, 1.0], &[0.5, 1.0, 3.0]]);
        let b = [1.0, 2.0, 3.0];
        let x1 = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x2 = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        for i in 0..3 {
            assert!((x1[i] - x2[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_nonsquare() {
        assert!(Lu::decompose(&Mat::zeros(2, 3)).is_err());
        assert!(Cholesky::decompose(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = Lu::decompose(&Mat::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn random_inverse_roundtrip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = rng.random_range(1..7usize);
            // Diagonally dominant ⇒ invertible.
            let mut a = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let inv = invert(&a).unwrap();
            assert!(a.matmul(&inv).approx_eq(&Mat::identity(n), 1e-8));
        }
    }
}
