//! Dense linear algebra kernels for the EECS reproduction.
//!
//! This crate provides exactly the numerical machinery the paper's pipeline
//! needs, implemented from scratch:
//!
//! * [`Mat`] — a dense, row-major, `f64` matrix with the usual algebraic
//!   operations,
//! * [`qr`] — Householder QR factorization (used to orthonormalize bases on
//!   the Grassmann manifold),
//! * [`svd`] — one-sided Jacobi singular value decomposition (used for the
//!   geodesic flow kernel, Eq. 2 of the paper, and for RANSAC homography
//!   estimation),
//! * [`eig`] — a cyclic Jacobi eigensolver for symmetric matrices (used by
//!   PCA),
//! * [`solve`] — LU decomposition with partial pivoting, matrix inversion and
//!   Cholesky factorization,
//! * [`pca`] — principal component analysis, including the Gram-matrix
//!   ("snapshot") formulation used when the feature dimension far exceeds the
//!   number of key frames (`α ≫ k`, Section III of the paper),
//! * [`stats`] — sample means, covariance matrices and the Mahalanobis
//!   distance used by the cross-camera re-identification stage
//!   (Section IV-C).
//!
//! # Example
//!
//! ```
//! use eecs_linalg::Mat;
//!
//! let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
//! let svd = eecs_linalg::svd::thin_svd(&a);
//! assert!((svd.singular_values[0] - 3.0).abs() < 1e-12);
//! ```

pub mod eig;
pub mod mat;
pub mod pca;
pub mod qr;
pub mod solve;
pub mod stats;
pub mod svd;

pub use eig::SymmetricEigen;
pub use mat::Mat;
pub use pca::Pca;
pub use qr::QrDecomposition;
pub use solve::{Cholesky, Lu};
pub use stats::mahalanobis_squared;
pub use svd::ThinSvd;

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be
    /// inverted/solved.
    Singular,
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration cap.
    NoConvergence {
        /// The algorithm that failed.
        algorithm: &'static str,
    },
    /// An argument was out of the valid domain (e.g. requesting more
    /// principal components than data columns).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence { algorithm } => {
                write!(f, "{algorithm} failed to converge")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LinalgError>();
    }
}
