//! One-sided Jacobi singular value decomposition.
//!
//! The geodesic flow kernel (Eq. 2 of the paper) requires the SVD of the
//! small `β × β` matrix `xᵢᵀ zⱼ`, including **both** singular-vector
//! factors. The one-sided Jacobi method is compact, numerically robust for
//! the modest sizes used here, and delivers `U`, `Σ`, and `V` directly.

use crate::mat::{dot, Mat};
use crate::{LinalgError, Result};

/// The thin SVD `A = U Σ Vᵀ` of an `m × n` matrix with `m ≥ n`.
///
/// `u` is `m × n` with orthonormal columns, `singular_values` holds the `n`
/// non-negative singular values in non-increasing order, and `v` is `n × n`
/// orthogonal.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, svd::thin_svd};
///
/// let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
/// let svd = thin_svd(&a);
/// assert!((svd.singular_values[0] - 4.0).abs() < 1e-12);
/// assert!((svd.singular_values[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors, `m × n`.
    pub u: Mat,
    /// Singular values, length `n`, non-increasing.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × n` (columns are the vectors).
    pub v: Mat,
}

impl ThinSvd {
    /// Reconstructs `U Σ Vᵀ`; useful in tests.
    pub fn reconstruct(&self) -> Mat {
        let sigma = Mat::from_diag(&self.singular_values);
        self.u.matmul(&sigma).matmul(&self.v.transpose())
    }

    /// Numerical rank: the number of singular values above `tol`.
    pub fn rank(&self, tol: f64) -> usize {
        self.singular_values.iter().filter(|&&s| s > tol).count()
    }
}

/// Computes the thin SVD of `a`.
///
/// Transposes internally when `m < n`, so any shape is accepted; the result
/// always satisfies `a ≈ u · diag(σ) · vᵀ` with `u: m × k`, `v: n × k`,
/// `k = min(m, n)`.
///
/// # Panics
///
/// Panics if `a` is empty.
pub fn thin_svd(a: &Mat) -> ThinSvd {
    assert!(!a.is_empty(), "cannot take the SVD of an empty matrix");
    if a.rows() >= a.cols() {
        jacobi_svd_tall(a).expect("jacobi SVD did not converge")
    } else {
        // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ.
        let t = jacobi_svd_tall(&a.transpose()).expect("jacobi SVD did not converge");
        ThinSvd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        }
    }
}

/// One-sided Jacobi SVD for `m ≥ n`.
///
/// Repeatedly rotates pairs of columns of a working copy of `A` until all
/// pairs are mutually orthogonal; the column norms then equal the singular
/// values, the normalized columns give `U`, and the accumulated rotations
/// give `V`.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] after 60 sweeps (never observed in
/// practice for the sizes this crate handles).
fn jacobi_svd_tall(a: &Mat) -> Result<ThinSvd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut w = a.clone(); // working copy whose columns we orthogonalize
    let mut v = Mat::identity(n);

    let eps = 1e-14;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let col_p = w.col(p);
                let col_q = w.col(q);
                let alpha = dot(&col_p, &col_p);
                let beta = dot(&col_q, &col_q);
                let gamma = dot(&col_p, &col_q);
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                off = off.max(gamma.abs() / (alpha.sqrt() * beta.sqrt()));
                if gamma.abs() <= eps * alpha.sqrt() * beta.sqrt() {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off <= eps {
            return Ok(finalize(w, v));
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "one-sided Jacobi SVD",
    })
}

/// Extracts `U`, `σ`, `V` from the orthogonalized working matrix and sorts
/// singular values in non-increasing order.
fn finalize(w: Mat, v: Mat) -> ThinSvd {
    let (m, n) = w.shape();
    let mut sigma: Vec<f64> = (0..n).map(|j| crate::mat::norm(&w.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap());

    let mut u = Mat::zeros(m, n);
    let mut v_sorted = Mat::zeros(n, n);
    let mut sigma_sorted = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        sigma_sorted[dst] = sigma[src];
        let mut ucol = w.col(src);
        if sigma[src] > 0.0 {
            for x in &mut ucol {
                *x /= sigma[src];
            }
        }
        u.set_col(dst, &ucol);
        v_sorted.set_col(dst, &v.col(src));
    }
    sigma.sort_by(|a, b| b.partial_cmp(a).unwrap());
    ThinSvd {
        u,
        singular_values: sigma_sorted,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Mat, tol: f64) {
        let gram = q.transpose_matmul(q).unwrap();
        assert!(gram.approx_eq(&Mat::identity(q.cols()), tol), "{gram:?}");
    }

    #[test]
    fn diagonal_matrix() {
        let a = Mat::from_diag(&[3.0, 1.0, 2.0]);
        let svd = thin_svd(&a);
        assert_eq!(svd.singular_values.len(), 3);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-12);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-12);
        assert!((svd.singular_values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let svd = thin_svd(&a);
        assert!(svd.reconstruct().approx_eq(&a, 1e-10));
        assert_orthonormal_cols(&svd.u, 1e-10);
        assert_orthonormal_cols(&svd.v, 1e-10);
    }

    #[test]
    fn reconstruction_wide() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let svd = thin_svd(&a);
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (3, 2));
        let sigma = Mat::from_diag(&svd.singular_values);
        let recon = svd.u.matmul(&sigma).matmul(&svd.v.transpose());
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn singular_values_nonincreasing_and_nonnegative() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = rng.random_range(2..9usize);
            let n = rng.random_range(1..9usize);
            let a = Mat::from_fn(m, n, |_, _| rng.random_range(-5.0..5.0));
            let svd = thin_svd(&a);
            for w in svd.singular_values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
            assert!(svd.reconstruct().approx_eq(&a, 1e-9));
        }
    }

    #[test]
    fn rank_of_rank_one_matrix() {
        // Outer product → rank 1.
        let a = Mat::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = thin_svd(&a);
        assert_eq!(svd.rank(1e-9), 1);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(3, 2);
        let svd = thin_svd(&a);
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn largest_singular_value_bounds_frobenius() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let svd = thin_svd(&a);
        let fro = a.frobenius_norm();
        assert!(svd.singular_values[0] <= fro + 1e-12);
        let sumsq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        assert!((sumsq.sqrt() - fro).abs() < 1e-10);
    }
}
