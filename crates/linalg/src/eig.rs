//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! PCA (both the covariance and the Gram/"snapshot" formulations) reduces to
//! the eigendecomposition of a symmetric positive semi-definite matrix; the
//! Jacobi method is exact enough and simple to verify.

use crate::mat::Mat;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = V Λ Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in non-increasing order; `eigenvectors` stores the
/// corresponding unit eigenvectors as **columns**.
///
/// # Example
///
/// ```
/// use eecs_linalg::{Mat, eig::symmetric_eigen};
///
/// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
/// let e = symmetric_eigen(&a).unwrap();
/// assert!((e.eigenvalues[0] - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, non-increasing.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose columns are the unit eigenvectors, same order as
    /// `eigenvalues`.
    pub eigenvectors: Mat,
}

impl SymmetricEigen {
    /// Reconstructs `V Λ Vᵀ`; useful in tests.
    pub fn reconstruct(&self) -> Mat {
        let lambda = Mat::from_diag(&self.eigenvalues);
        self.eigenvectors
            .matmul(&lambda)
            .matmul(&self.eigenvectors.transpose())
    }
}

/// Computes the eigendecomposition of a symmetric matrix using the cyclic
/// Jacobi method.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is not square.
/// * [`LinalgError::InvalidArgument`] if `a` is not symmetric to `1e-8`
///   relative tolerance.
/// * [`LinalgError::NoConvergence`] if 100 sweeps do not reach convergence.
pub fn symmetric_eigen(a: &Mat) -> Result<SymmetricEigen> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(LinalgError::InvalidArgument(format!(
                    "matrix is not symmetric at ({i},{j})"
                )));
            }
        }
    }
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: vec![],
            eigenvectors: Mat::zeros(0, 0),
        });
    }

    let mut w = a.clone();
    // Symmetrize exactly so rotations stay consistent.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (w[(i, j)] + w[(j, i)]);
            w[(i, j)] = avg;
            w[(j, i)] = avg;
        }
    }
    let mut v = Mat::identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += w[(p, q)] * w[(p, q)];
            }
        }
        if off.sqrt() <= 1e-13 * scale {
            return Ok(finalize(w, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Update rows/columns p and q of W = Jᵀ W J.
                for i in 0..n {
                    let wip = w[(i, p)];
                    let wiq = w[(i, q)];
                    w[(i, p)] = c * wip - s * wiq;
                    w[(i, q)] = s * wip + c * wiq;
                }
                for i in 0..n {
                    let wpi = w[(p, i)];
                    let wqi = w[(q, i)];
                    w[(p, i)] = c * wpi - s * wqi;
                    w[(q, i)] = s * wpi + c * wqi;
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "cyclic Jacobi eigendecomposition",
    })
}

fn finalize(w: Mat, v: Mat) -> SymmetricEigen {
    let n = w.rows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (w[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut eigenvalues = Vec::with_capacity(n);
    let mut eigenvectors = Mat::zeros(n, n);
    for (dst, &(lambda, src)) in pairs.iter().enumerate() {
        eigenvalues.push(lambda);
        eigenvectors.set_col(dst, &v.col(src));
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_eigenvalues() {
        let a = Mat::from_diag(&[1.0, 4.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 4.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_random() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..15 {
            let n = rng.random_range(1..8usize);
            let b = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
            let a = b.transpose_matmul(&b).unwrap(); // symmetric PSD
            let e = symmetric_eigen(&a).unwrap();
            assert!(e.reconstruct().approx_eq(&a, 1e-9));
            // PSD ⇒ eigenvalues non-negative.
            assert!(e.eigenvalues.iter().all(|&l| l > -1e-10));
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let gram = e.eigenvectors.transpose_matmul(&e.eigenvectors).unwrap();
        assert!(gram.approx_eq(&Mat::identity(3), 1e-10));
    }

    #[test]
    fn av_equals_lambda_v() {
        let a = Mat::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..2 {
            let v = e.eigenvectors.col(k);
            let av = a.matvec(&v);
            for i in 0..2 {
                assert!((av[i] - e.eigenvalues[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_nonsquare() {
        assert!(matches!(
            symmetric_eigen(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 7.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }
}
