//! Dense, row-major `f64` matrices.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// `Mat` is the workhorse type of the whole reproduction: video features
/// (`k × α` per Section III of the paper), PCA bases (`α × β`), homographies
/// (`3 × 3`) and covariance matrices are all `Mat`s.
///
/// # Example
///
/// ```
/// use eecs_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose rows are the given vectors.
    pub fn from_row_vecs(rows: &[Vec<f64>]) -> Self {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&refs)
    }

    /// Creates a column vector (an `n × 1` matrix).
    pub fn col_vector(v: &[f64]) -> Self {
        Mat::from_vec(v.len(), 1, v.to_vec())
    }

    /// Creates a row vector (a `1 × n` matrix).
    pub fn row_vector(v: &[f64]) -> Self {
        Mat::from_vec(1, v.len(), v.to_vec())
    }

    /// Creates a square diagonal matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {} out of bounds ({})", i, self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {} out of bounds ({})", i, self.rows);
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {} out of bounds ({})", j, self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols` or `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "col {} out of bounds ({})", j, self.cols);
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree; use [`Mat::try_matmul`] for a
    /// fallible version.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != rhs.rows`.
    pub fn try_matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and
        // `out`, which matters for the large feature matrices in this project.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Computes `selfᵀ * rhs` without materializing the transpose.
    pub fn transpose_matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let lrow = self.row(k);
            let rrow = rhs.row(k);
            for (i, &a) in lrow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec length mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Scales every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Mat {
        let mut out = self.clone();
        for x in &mut out.data {
            *x *= s;
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        let mut out = self.clone();
        for x in &mut out.data {
            *x = f(*x);
        }
        out
    }

    /// Extracts the sub-matrix of `nrows` rows and `ncols` columns starting
    /// at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Mat {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "submatrix out of bounds"
        );
        Mat::from_fn(nrows, ncols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Horizontally concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Mat::from_vec(self.rows + rhs.rows, self.cols, data))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Returns `true` when all elements of `self - other` are within `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalizes `v` in place to unit Euclidean norm; leaves zero vectors alone.
pub fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, s: f64) -> Mat {
        self.scale(s)
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[0.0, 3.0]]);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b);
        assert!(fast.approx_eq(&slow, 1e-14));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        let mv = a.matvec(&v);
        let mm = a.matmul(&Mat::col_vector(&v));
        assert_eq!(mv, mm.col(0));
    }

    #[test]
    fn hstack_vstack() {
        let a = Mat::from_rows(&[&[1.0], &[2.0]]);
        let b = Mat::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h, Mat::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        let v = a.vstack(&b).unwrap();
        assert_eq!(v, Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn hstack_shape_mismatch() {
        let a = Mat::zeros(2, 1);
        let b = Mat::zeros(3, 1);
        assert!(a.hstack(&b).is_err());
        assert!(Mat::zeros(2, 2).vstack(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 2, 2, 2);
        assert_eq!(s, Mat::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
    }

    #[test]
    fn row_col_access() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        let mut b = a.clone();
        b.set_col(1, &[9.0, 8.0]);
        assert_eq!(b.col(1), vec![9.0, 8.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Mat::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Mat::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Mat::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Mat::from_rows(&[&[-1.0, -2.0]]));
    }

    #[test]
    fn norms() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Mat::zeros(1, 1));
        assert!(s.contains("Mat 1x1"));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_len() {
        let _ = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f64]> = a.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }
}
