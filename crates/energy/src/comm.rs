//! Communication cost modeling.
//!
//! Wire sizes follow Section V of the paper exactly: 172 bytes of metadata
//! per detected object (8-byte bounding box + 4-byte probability + 160-byte
//! color feature), ~16 KB of features per uploaded key frame, and
//! JPEG-compressed frames for the image transfers used to estimate the
//! per-camera communication cost `C_j`.

use crate::model::DeviceEnergyModel;
use crate::{EnergyError, Result};

/// Metadata bytes per detected object (Section V-A): 8 (bbox) +
/// 4 (probability) + 160 (40-d color feature).
pub const METADATA_BYTES_PER_OBJECT: u64 = 172;

/// Effective JPEG compression: bytes per pixel for the surveillance-style
/// content of the datasets.
pub const JPEG_BYTES_PER_PIXEL: f64 = 0.15;

/// Fixed JPEG header/container overhead.
pub const JPEG_HEADER_BYTES: u64 = 600;

/// Estimated size of a JPEG-compressed `w × h` frame.
pub fn jpeg_frame_bytes(w: usize, h: usize) -> u64 {
    JPEG_HEADER_BYTES + ((w * h) as f64 * JPEG_BYTES_PER_PIXEL) as u64
}

/// Metadata bytes for `objects` detected objects.
pub fn metadata_bytes(objects: usize) -> u64 {
    objects as u64 * METADATA_BYTES_PER_OBJECT
}

/// Bytes to upload one key frame's feature vector (`dim` f32 values — the
/// paper's 4180-d feature is "about 16KB").
pub fn feature_upload_bytes(dim: usize) -> u64 {
    (dim * 4) as u64
}

/// A wireless link between a camera and the controller.
///
/// `C_j` in the paper "depends on the resolution of the captured video, and
/// the available bandwidth between the camera sensor and the central
/// controller" — both appear here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Delivery quality in `(0, 1]`: the fraction of transmissions that
    /// succeed; retransmissions inflate energy by `1 / quality`.
    pub quality: f64,
}

impl Default for LinkModel {
    /// "WiFi in good conditions" (Section VI).
    fn default() -> Self {
        LinkModel {
            bandwidth_bps: 20e6,
            quality: 0.95,
        }
    }
}

impl LinkModel {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for non-positive bandwidth
    /// or quality outside `(0, 1]`.
    pub fn new(bandwidth_bps: f64, quality: f64) -> Result<LinkModel> {
        if bandwidth_bps <= 0.0 {
            return Err(EnergyError::InvalidArgument(
                "bandwidth must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&quality) || quality == 0.0 {
            return Err(EnergyError::InvalidArgument(
                "quality must be in (0, 1]".into(),
            ));
        }
        Ok(LinkModel {
            bandwidth_bps,
            quality,
        })
    }

    /// Seconds to deliver `bytes` including retransmissions.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0 / self.bandwidth_bps) / self.quality
    }

    /// Radio energy to deliver `bytes` over this link: the device's
    /// transmit energy inflated by the retransmission factor.
    pub fn transmit_energy(&self, bytes: u64, device: &DeviceEnergyModel) -> f64 {
        device.transmit_energy(bytes) / self.quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_metadata_size() {
        assert_eq!(METADATA_BYTES_PER_OBJECT, 172);
        assert_eq!(metadata_bytes(3), 516);
        assert_eq!(metadata_bytes(0), 0);
    }

    #[test]
    fn feature_upload_is_about_16kb_at_4180_dims() {
        let bytes = feature_upload_bytes(4180);
        assert!((16_000..17_500).contains(&(bytes as usize)), "{bytes}");
    }

    #[test]
    fn jpeg_scales_with_resolution() {
        let small = jpeg_frame_bytes(360, 288);
        let large = jpeg_frame_bytes(1024, 768);
        assert!(large > small * 7, "{small} vs {large}");
        assert!(small > JPEG_HEADER_BYTES);
    }

    #[test]
    fn transfer_time_positive_and_scaled() {
        let link = LinkModel::default();
        let t1 = link.transfer_time(10_000);
        let t2 = link.transfer_time(20_000);
        assert!(t1 > 0.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn worse_quality_costs_more_energy() {
        let device = DeviceEnergyModel::default();
        let good = LinkModel::new(20e6, 1.0).unwrap();
        let bad = LinkModel::new(20e6, 0.5).unwrap();
        let bytes = 50_000;
        assert!(bad.transmit_energy(bytes, &device) > good.transmit_energy(bytes, &device));
        assert!(
            (bad.transmit_energy(bytes, &device) - 2.0 * good.transmit_energy(bytes, &device))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn rejects_bad_links() {
        assert!(LinkModel::new(0.0, 0.9).is_err());
        assert!(LinkModel::new(1e6, 0.0).is_err());
        assert!(LinkModel::new(1e6, 1.5).is_err());
    }
}
