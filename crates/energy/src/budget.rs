//! Energy budgets and battery state.
//!
//! Section VI: "the energy budget is computed by first defining an expected
//! operation time (e.g., 6 hours) and an expected frame rate (e.g., image
//! frames are processed every 2 seconds). … the residual energy capacity is
//! divided by the number of frames to compute the energy budget for each
//! frame."

use crate::{EnergyError, Result};

/// A per-frame energy budget `B_j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    joules_per_frame: f64,
}

impl EnergyBudget {
    /// A budget of `joules_per_frame` Joules per processed frame.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for a negative budget.
    pub fn per_frame(joules_per_frame: f64) -> Result<EnergyBudget> {
        if joules_per_frame < 0.0 {
            return Err(EnergyError::InvalidArgument(
                "budget must be non-negative".into(),
            ));
        }
        Ok(EnergyBudget { joules_per_frame })
    }

    /// The paper's derivation: residual capacity, expected operation time
    /// and frame period → Joules per frame.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for non-positive inputs.
    pub fn from_operation(
        residual_capacity_j: f64,
        operation_hours: f64,
        frame_period_s: f64,
    ) -> Result<EnergyBudget> {
        if residual_capacity_j <= 0.0 || operation_hours <= 0.0 || frame_period_s <= 0.0 {
            return Err(EnergyError::InvalidArgument(
                "capacity, duration and frame period must be positive".into(),
            ));
        }
        let frames = operation_hours * 3600.0 / frame_period_s;
        EnergyBudget::per_frame(residual_capacity_j / frames)
    }

    /// The budget in Joules per frame.
    pub fn joules_per_frame(&self) -> f64 {
        self.joules_per_frame
    }

    /// Whether a per-frame cost fits the budget
    /// (the constraint `c(A'_j) + C_j ≤ B_j` of Section IV).
    pub fn allows(&self, cost_j: f64) -> bool {
        cost_j <= self.joules_per_frame
    }
}

/// A camera's battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryState {
    capacity_j: f64,
    used_j: f64,
}

impl BatteryState {
    /// A fresh battery of `capacity_j` Joules.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for a non-positive capacity.
    pub fn new(capacity_j: f64) -> Result<BatteryState> {
        if capacity_j <= 0.0 {
            return Err(EnergyError::InvalidArgument(
                "capacity must be positive".into(),
            ));
        }
        Ok(BatteryState {
            capacity_j,
            used_j: 0.0,
        })
    }

    /// Remaining energy in Joules.
    pub fn residual(&self) -> f64 {
        (self.capacity_j - self.used_j).max(0.0)
    }

    /// Total energy consumed so far.
    pub fn used(&self) -> f64 {
        self.used_j
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn residual_fraction(&self) -> f64 {
        self.residual() / self.capacity_j
    }

    /// Consumes `joules` from the battery.
    ///
    /// # Errors
    ///
    /// * [`EnergyError::InvalidArgument`] for negative draws,
    /// * [`EnergyError::BatteryExhausted`] when the draw exceeds the
    ///   residual (the battery is left unchanged).
    pub fn drain(&mut self, joules: f64) -> Result<()> {
        if joules < 0.0 {
            return Err(EnergyError::InvalidArgument(
                "cannot drain negative energy".into(),
            ));
        }
        if joules > self.residual() + 1e-12 {
            return Err(EnergyError::BatteryExhausted {
                requested: joules,
                remaining: self.residual(),
            });
        }
        self.used_j += joules;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_example() {
        // 6 hours at one frame per 2 seconds = 10800 frames; a 10.8 kJ
        // residual yields 1 J/frame — the regime of Fig. 5a.
        let b = EnergyBudget::from_operation(10_800.0, 6.0, 2.0).unwrap();
        assert!((b.joules_per_frame() - 1.0).abs() < 1e-9);
        assert!(b.allows(0.9));
        assert!(!b.allows(1.1));
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        let b = EnergyBudget::per_frame(0.07).unwrap();
        assert!(b.allows(0.07));
    }

    #[test]
    fn rejects_bad_budget_inputs() {
        assert!(EnergyBudget::per_frame(-0.1).is_err());
        assert!(EnergyBudget::from_operation(0.0, 6.0, 2.0).is_err());
        assert!(EnergyBudget::from_operation(100.0, 0.0, 2.0).is_err());
        assert!(EnergyBudget::from_operation(100.0, 6.0, 0.0).is_err());
    }

    #[test]
    fn battery_drains_and_reports() {
        let mut b = BatteryState::new(10.0).unwrap();
        b.drain(4.0).unwrap();
        assert!((b.residual() - 6.0).abs() < 1e-12);
        assert!((b.used() - 4.0).abs() < 1e-12);
        assert!((b.residual_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn battery_exhaustion_is_detected_and_atomic() {
        let mut b = BatteryState::new(1.0).unwrap();
        let err = b.drain(2.0).unwrap_err();
        assert!(matches!(err, EnergyError::BatteryExhausted { .. }));
        // Failed drain leaves state untouched.
        assert_eq!(b.used(), 0.0);
    }

    #[test]
    fn battery_rejects_negative_drain_and_capacity() {
        assert!(BatteryState::new(0.0).is_err());
        let mut b = BatteryState::new(1.0).unwrap();
        assert!(b.drain(-0.5).is_err());
    }
}
