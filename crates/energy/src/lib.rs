//! Energy modeling for camera sensor nodes.
//!
//! The paper measures per-frame Joule costs on Asus Zen II phones with
//! PowerTutor \[23\] and estimates communication costs with iPerf-style
//! transfers (Section VI, "Computing energy costs and budget"). This crate
//! replaces the hardware with a calibrated model:
//!
//! * [`model`] — converts a detector's deterministic operation count into
//!   processing Joules, and transmitted bytes into radio Joules,
//! * [`comm`] — wire sizes (JPEG frames, 172-byte detection metadata,
//!   feature uploads) and link quality effects,
//! * [`budget`] — the paper's budget computation: operation time + frame
//!   rate + residual battery → Joules per frame,
//! * [`meter`] — a PowerTutor-like accumulating meter with per-category
//!   breakdown,
//! * [`profile`] — per-camera device classes (energy model + battery +
//!   resolution cap) for heterogeneous fleets.
//!
//! Calibration: the default device constant is chosen so the ACF detector
//! on a 360×288 frame costs ≈ 0.07 J, the paper's Table II anchor; all
//! other algorithm costs then fall out of their *measured* op counts.

pub mod budget;
pub mod comm;
pub mod meter;
pub mod model;
pub mod profile;

pub use budget::{BatteryState, EnergyBudget};
pub use comm::{feature_upload_bytes, jpeg_frame_bytes, metadata_bytes, LinkModel};
pub use meter::{EnergyCategory, PowerMeter};
pub use model::DeviceEnergyModel;
pub use profile::DeviceProfile;

use std::error::Error;
use std::fmt;

/// Errors produced by energy accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnergyError {
    /// An argument was out of the valid domain.
    InvalidArgument(String),
    /// A battery drain request exceeded the remaining capacity.
    BatteryExhausted {
        /// Energy requested (J).
        requested: f64,
        /// Energy remaining (J).
        remaining: f64,
    },
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            EnergyError::BatteryExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "battery exhausted: requested {requested:.3} J, remaining {remaining:.3} J"
            ),
        }
    }
}

impl Error for EnergyError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, EnergyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = EnergyError::BatteryExhausted {
            requested: 2.0,
            remaining: 1.0,
        };
        assert!(e.to_string().contains("2.000"));
    }
}
