//! A PowerTutor-like accumulating energy meter.

use std::collections::BTreeMap;

/// What consumed the energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EnergyCategory {
    /// Detection-algorithm computation.
    Processing,
    /// Radio transmission (features, metadata, images).
    Communication,
    /// Everything else (feature extraction for uploads, bookkeeping).
    Overhead,
}

impl EnergyCategory {
    /// All categories, in accounting order.
    pub const ALL: [EnergyCategory; 3] = [
        EnergyCategory::Processing,
        EnergyCategory::Communication,
        EnergyCategory::Overhead,
    ];

    /// A stable lowercase label, used as a metric-name component.
    pub fn name(self) -> &'static str {
        match self {
            EnergyCategory::Processing => "processing",
            EnergyCategory::Communication => "communication",
            EnergyCategory::Overhead => "overhead",
        }
    }
}

/// Accumulates Joules by category — the reproduction's PowerTutor.
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    totals: BTreeMap<EnergyCategory, f64>,
    events: u64,
}

impl PowerMeter {
    /// A fresh meter.
    pub fn new() -> PowerMeter {
        PowerMeter::default()
    }

    /// Records `joules` against a category.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite energy — meters only accumulate.
    pub fn record(&mut self, category: EnergyCategory, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be finite and non-negative, got {joules}"
        );
        *self.totals.entry(category).or_insert(0.0) += joules;
        self.events += 1;
    }

    /// Total Joules across categories.
    pub fn total(&self) -> f64 {
        self.totals.values().sum()
    }

    /// Joules recorded for one category.
    pub fn by_category(&self, category: EnergyCategory) -> f64 {
        self.totals.get(&category).copied().unwrap_or(0.0)
    }

    /// Number of record events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Per-category totals with stable labels, in accounting order — the
    /// shape a metrics registry scrapes into gauges.
    pub fn snapshot(&self) -> [(&'static str, f64); 3] {
        EnergyCategory::ALL.map(|c| (c.name(), self.by_category(c)))
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &PowerMeter) {
        for (&cat, &j) in &other.totals {
            *self.totals.entry(cat).or_insert(0.0) += j;
        }
        self.events += other.events;
    }

    /// Resets all accumulators.
    pub fn reset(&mut self) {
        self.totals.clear();
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_category() {
        let mut m = PowerMeter::new();
        m.record(EnergyCategory::Processing, 1.5);
        m.record(EnergyCategory::Processing, 0.5);
        m.record(EnergyCategory::Communication, 0.25);
        assert!((m.total() - 2.25).abs() < 1e-12);
        assert!((m.by_category(EnergyCategory::Processing) - 2.0).abs() < 1e-12);
        assert_eq!(m.by_category(EnergyCategory::Overhead), 0.0);
        assert_eq!(m.events(), 3);
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = PowerMeter::new();
        a.record(EnergyCategory::Processing, 1.0);
        let mut b = PowerMeter::new();
        b.record(EnergyCategory::Processing, 2.0);
        b.record(EnergyCategory::Overhead, 0.5);
        a.merge(&b);
        assert!((a.total() - 3.5).abs() < 1e-12);
        assert_eq!(a.events(), 3);
    }

    #[test]
    fn reset_clears() {
        let mut m = PowerMeter::new();
        m.record(EnergyCategory::Communication, 1.0);
        m.reset();
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.events(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        PowerMeter::new().record(EnergyCategory::Processing, -1.0);
    }
}
