//! The device energy model.

use crate::{EnergyError, Result};

/// Converts deterministic work counts into Joules for one device class.
///
/// The paper's Tables II–IV report absolute Joules measured on phones; the
/// model reproduces the *structure* of those numbers: processing energy
/// proportional to algorithm work, transmission energy proportional to
/// bytes, plus a fixed radio wake-up overhead per burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEnergyModel {
    /// Joules per feature/classifier operation.
    pub joules_per_op: f64,
    /// Joules per transmitted byte (WiFi in good conditions).
    pub joules_per_byte_tx: f64,
    /// Fixed radio wake-up cost per transmission burst.
    pub radio_overhead_j: f64,
    /// Device throughput in operations per second — converts op counts to
    /// the processing-time column of Tables II–IV.
    pub ops_per_second: f64,
}

impl Default for DeviceEnergyModel {
    /// The "Asus Zen II" calibration (DESIGN.md): `joules_per_op` anchored
    /// so ACF on a 360×288 frame lands at ≈ 0.07 J (Table II); the radio
    /// constants follow WiFi measurements of roughly 5 µJ/byte effective
    /// energy plus ~10 mJ per burst.
    fn default() -> Self {
        DeviceEnergyModel {
            joules_per_op: 5.0e-8,
            joules_per_byte_tx: 5.0e-6,
            radio_overhead_j: 0.01,
            ops_per_second: 1.2e7,
        }
    }
}

impl DeviceEnergyModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for negative constants.
    pub fn new(
        joules_per_op: f64,
        joules_per_byte_tx: f64,
        radio_overhead_j: f64,
    ) -> Result<DeviceEnergyModel> {
        if joules_per_op < 0.0 || joules_per_byte_tx < 0.0 || radio_overhead_j < 0.0 {
            return Err(EnergyError::InvalidArgument(
                "energy constants must be non-negative".into(),
            ));
        }
        Ok(DeviceEnergyModel {
            joules_per_op,
            joules_per_byte_tx,
            radio_overhead_j,
            ops_per_second: 1.2e7,
        })
    }

    /// Processing energy for `ops` operations.
    pub fn processing_energy(&self, ops: u64) -> f64 {
        ops as f64 * self.joules_per_op
    }

    /// Processing time for `ops` operations (seconds).
    pub fn processing_time(&self, ops: u64) -> f64 {
        ops as f64 / self.ops_per_second
    }

    /// Radio energy for one burst of `bytes` (zero bytes costs nothing —
    /// the radio never wakes).
    pub fn transmit_energy(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.radio_overhead_j + bytes as f64 * self.joules_per_byte_tx
        }
    }

    /// Re-anchors `joules_per_op` so that `reference_ops` maps to
    /// `reference_joules` — the calibration step the paper performed with
    /// PowerTutor on sampled frames.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for zero ops or
    /// non-positive target energy.
    pub fn calibrated_to(&self, reference_ops: u64, reference_joules: f64) -> Result<Self> {
        if reference_ops == 0 || reference_joules <= 0.0 {
            return Err(EnergyError::InvalidArgument(
                "calibration needs positive ops and energy".into(),
            ));
        }
        Ok(DeviceEnergyModel {
            joules_per_op: reference_joules / reference_ops as f64,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_is_linear_in_ops() {
        let m = DeviceEnergyModel::default();
        let e1 = m.processing_energy(1_000_000);
        let e2 = m.processing_energy(2_000_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let m = DeviceEnergyModel::default();
        assert_eq!(m.transmit_energy(0), 0.0);
        assert!(m.transmit_energy(1) >= m.radio_overhead_j);
    }

    #[test]
    fn transmit_includes_overhead_once() {
        let m = DeviceEnergyModel::default();
        let one = m.transmit_energy(1000);
        let expected = m.radio_overhead_j + 1000.0 * m.joules_per_byte_tx;
        assert!((one - expected).abs() < 1e-12);
    }

    #[test]
    fn calibration_hits_reference_point() {
        let m = DeviceEnergyModel::default()
            .calibrated_to(1_400_000, 0.07)
            .unwrap();
        assert!((m.processing_energy(1_400_000) - 0.07).abs() < 1e-12);
    }

    #[test]
    fn processing_time_is_linear() {
        let m = DeviceEnergyModel::default();
        assert!((m.processing_time(12_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(DeviceEnergyModel::new(-1.0, 0.0, 0.0).is_err());
        assert!(DeviceEnergyModel::default().calibrated_to(0, 1.0).is_err());
        assert!(DeviceEnergyModel::default().calibrated_to(10, 0.0).is_err());
    }
}
