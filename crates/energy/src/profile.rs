//! Per-camera device profiles for heterogeneous fleets.
//!
//! The paper measures one device class (Asus Zen II phones, Tables
//! II–IV); real deployments mix hardware generations. A
//! [`DeviceProfile`] bundles everything that distinguishes one camera's
//! hardware from another's — its [`DeviceEnergyModel`] (J/op table and
//! radio costs), its battery capacity, and the largest frame it can
//! capture — so the controller can optimize each camera against its
//! *own* cost model instead of a fleet-wide average.
//!
//! The three presets keep the paper's cost *ordering*: a `flagship`
//! matches the calibrated Zen II constants exactly (so a uniform
//! flagship fleet is bit-identical to the homogeneous model), a
//! `midrange` pays ~1.6× per operation, and a `lowend` ~3× with a
//! costlier radio and a smaller battery.

use crate::model::DeviceEnergyModel;
use crate::{EnergyError, Result};

/// One camera's hardware class: energy model, battery, resolution cap.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable class name (stamped into checkpoints).
    pub name: String,
    /// Processing and radio energy constants for this class.
    pub device: DeviceEnergyModel,
    /// Battery capacity in Joules.
    pub battery_capacity_j: f64,
    /// Widest frame this class can capture (pixels).
    pub max_width: usize,
    /// Tallest frame this class can capture (pixels).
    pub max_height: usize,
}

impl DeviceProfile {
    /// The capacity used by the homogeneous simulation since v0 —
    /// effectively unlimited, so energy accounting, not exhaustion,
    /// drives the results.
    pub const UNIFORM_CAPACITY_J: f64 = 1e12;

    /// The exact homogeneous model every run used before profiles
    /// existed: the given device constants, the legacy 1 TJ battery and
    /// no resolution cap. A fleet of these is bit-identical to the
    /// pre-profile simulation.
    pub fn uniform(device: DeviceEnergyModel) -> DeviceProfile {
        DeviceProfile {
            name: "uniform".into(),
            device,
            battery_capacity_j: DeviceProfile::UNIFORM_CAPACITY_J,
            max_width: usize::MAX,
            max_height: usize::MAX,
        }
    }

    /// Current-generation phone: the paper's calibrated Zen II constants
    /// (identical to [`DeviceEnergyModel::default`]) and a battery large
    /// enough that accounting, not exhaustion, shapes the run.
    pub fn flagship() -> DeviceProfile {
        DeviceProfile {
            name: "flagship".into(),
            device: DeviceEnergyModel::default(),
            battery_capacity_j: DeviceProfile::UNIFORM_CAPACITY_J,
            max_width: 1024,
            max_height: 768,
        }
    }

    /// Mid-tier device: ~1.6× the flagship's Joules per operation and a
    /// slower pipeline, same radio, half the battery.
    pub fn midrange() -> DeviceProfile {
        let d = DeviceEnergyModel::default();
        DeviceProfile {
            name: "midrange".into(),
            device: DeviceEnergyModel {
                joules_per_op: d.joules_per_op * 1.6,
                ops_per_second: d.ops_per_second * 0.75,
                ..d
            },
            battery_capacity_j: DeviceProfile::UNIFORM_CAPACITY_J * 0.5,
            max_width: 1024,
            max_height: 768,
        }
    }

    /// Legacy device: ~3× the flagship's Joules per operation, a hungry
    /// radio, a small battery and a VGA sensor cap.
    pub fn lowend() -> DeviceProfile {
        let d = DeviceEnergyModel::default();
        DeviceProfile {
            name: "lowend".into(),
            device: DeviceEnergyModel {
                joules_per_op: d.joules_per_op * 3.0,
                joules_per_byte_tx: d.joules_per_byte_tx * 1.5,
                radio_overhead_j: d.radio_overhead_j * 1.5,
                ops_per_second: d.ops_per_second * 0.5,
            },
            battery_capacity_j: DeviceProfile::UNIFORM_CAPACITY_J * 0.2,
            max_width: 640,
            max_height: 480,
        }
    }

    /// Same profile with a different battery capacity.
    pub fn with_capacity(mut self, battery_capacity_j: f64) -> DeviceProfile {
        self.battery_capacity_j = battery_capacity_j;
        self
    }

    /// The relative per-operation cost of this class against a reference
    /// device — the factor the controller divides a camera's budget by
    /// so algorithm profiles trained on the reference stay comparable.
    pub fn cost_scale(&self, reference: &DeviceEnergyModel) -> f64 {
        self.device.joules_per_op / reference.joules_per_op
    }

    /// Whether this class can capture `width`×`height` frames.
    pub fn supports_resolution(&self, width: usize, height: usize) -> bool {
        width <= self.max_width && height <= self.max_height
    }

    /// Structural validation.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for a non-positive or
    /// non-finite battery capacity, zero resolution caps, or negative
    /// energy constants.
    pub fn validate(&self) -> Result<()> {
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err(EnergyError::InvalidArgument(format!(
                "profile {:?}: battery capacity must be positive and finite, got {}",
                self.name, self.battery_capacity_j
            )));
        }
        if self.max_width == 0 || self.max_height == 0 {
            return Err(EnergyError::InvalidArgument(format!(
                "profile {:?}: resolution caps must be positive",
                self.name
            )));
        }
        if self.device.joules_per_op < 0.0
            || self.device.joules_per_byte_tx < 0.0
            || self.device.radio_overhead_j < 0.0
            || self.device.ops_per_second <= 0.0
        {
            return Err(EnergyError::InvalidArgument(format!(
                "profile {:?}: energy constants out of domain",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_the_legacy_homogeneous_model() {
        let p = DeviceProfile::uniform(DeviceEnergyModel::default());
        assert_eq!(p.device, DeviceEnergyModel::default());
        assert_eq!(p.battery_capacity_j, 1e12);
        assert!(p.supports_resolution(1024, 768));
        assert_eq!(p.cost_scale(&DeviceEnergyModel::default()), 1.0);
        p.validate().unwrap();
    }

    #[test]
    fn presets_keep_the_paper_cost_ordering() {
        let (f, m, l) = (
            DeviceProfile::flagship(),
            DeviceProfile::midrange(),
            DeviceProfile::lowend(),
        );
        for p in [&f, &m, &l] {
            p.validate().unwrap();
        }
        // Tables II–IV structure: each class down pays strictly more per
        // operation and holds no more battery.
        assert!(f.device.joules_per_op < m.device.joules_per_op);
        assert!(m.device.joules_per_op < l.device.joules_per_op);
        assert!(f.battery_capacity_j > m.battery_capacity_j);
        assert!(m.battery_capacity_j > l.battery_capacity_j);
        // The flagship IS the calibrated Zen II.
        assert_eq!(f.device, DeviceEnergyModel::default());
    }

    #[test]
    fn cost_scale_is_relative_to_the_reference() {
        let reference = DeviceEnergyModel::default();
        assert_eq!(DeviceProfile::flagship().cost_scale(&reference), 1.0);
        let m = DeviceProfile::midrange().cost_scale(&reference);
        assert!((m - 1.6).abs() < 1e-12, "midrange scale {m}");
        let l = DeviceProfile::lowend().cost_scale(&reference);
        assert!((l - 3.0).abs() < 1e-12, "lowend scale {l}");
    }

    #[test]
    fn resolution_caps_gate_large_sensors() {
        let l = DeviceProfile::lowend();
        assert!(l.supports_resolution(360, 288));
        assert!(l.supports_resolution(640, 480));
        assert!(!l.supports_resolution(1024, 768));
    }

    #[test]
    fn validation_rejects_broken_profiles() {
        let mut p = DeviceProfile::flagship();
        p.battery_capacity_j = 0.0;
        assert!(p.validate().is_err());
        let mut p = DeviceProfile::flagship();
        p.battery_capacity_j = f64::INFINITY;
        assert!(p.validate().is_err());
        let mut p = DeviceProfile::flagship();
        p.max_width = 0;
        assert!(p.validate().is_err());
        let mut p = DeviceProfile::flagship();
        p.device.joules_per_op = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn with_capacity_overrides_only_the_battery() {
        let p = DeviceProfile::lowend().with_capacity(42.0);
        assert_eq!(p.battery_capacity_j, 42.0);
        assert_eq!(p.device, DeviceProfile::lowend().device);
    }
}
