//! End-to-end pipeline benchmarks: cross-camera re-identification fusion,
//! single-frame detection per algorithm, and a full assessment →
//! selection → operation round on the miniature dataset, run both serial
//! and parallel.
//!
//! Unlike the other bench targets this one has a custom `main`: after the
//! benches run it computes the serial-vs-parallel speedup of the full
//! round and writes `BENCH_pipeline.json` at the repository root — the
//! machine-readable trajectory CI smoke-checks (`check_bench`) and future
//! PRs regress against. `EECS_BENCH_ITERS=1` keeps smoke runs short.

use criterion::{black_box, Criterion};
use eecs_bench::artifacts::Artifacts;
use eecs_bench::report::{self, BenchEntry};
use eecs_bench::serving::{mixed_batch, service_base};
use eecs_bench::sweep::{run_sweep, Shard, SweepOptions, SweepSpec};
use eecs_bench::Scale;
use eecs_core::config::EecsConfig;
use eecs_core::metadata::{CameraReport, ObjectMetadata};
use eecs_core::reid::{fuse_reports, ReidConfig};
use eecs_core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::BBox;
use eecs_detect::pyramid::ScaleSchedule;
use eecs_detect::{Detector, FrameFeatures};
use eecs_geometry::calibration::{landmark_grid, GroundCalibration};
use eecs_geometry::camera::Camera;
use eecs_geometry::point::{Point2, Point3};
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::VideoFeed;

fn reid_bench(c: &mut Criterion) {
    // 4 cameras × 8 people per frame.
    let lm = landmark_grid(10.0, 5);
    let mut cams = Vec::new();
    let mut cals = Vec::new();
    for k in 0..4 {
        let angle = k as f64 / 4.0 * std::f64::consts::TAU;
        let cam = Camera::new(
            Point3::new(5.0 + 8.0 * angle.cos(), 5.0 + 8.0 * angle.sin(), 2.8),
            angle + std::f64::consts::PI,
            0.33,
            320.0,
            360,
            288,
        );
        cals.push(GroundCalibration::from_camera(&cam, &lm).unwrap());
        cams.push(cam);
    }
    let reports: Vec<CameraReport> = cams
        .iter()
        .enumerate()
        .map(|(j, cam)| CameraReport {
            objects: (0..8)
                .filter_map(|i| {
                    let a = i as f64 / 8.0 * std::f64::consts::TAU;
                    let t = Point2::new(5.0 + 2.5 * a.cos(), 5.0 + 2.5 * a.sin());
                    cam.person_bbox(&t, 1.7, 0.5)
                        .ok()
                        .map(|(x0, y0, x1, y1)| ObjectMetadata {
                            camera: j,
                            bbox: BBox::new(x0, y0, x1, y1),
                            probability: 0.8,
                            color: vec![i as f64 * 0.1; 8],
                        })
                })
                .collect(),
        })
        .collect();
    let reid = ReidConfig {
        ground_gate_m: 0.9,
        color_gate: 8.0,
        color_metric: None,
    };
    c.bench_function("reid_fuse_4cams_8people", |b| {
        b.iter(|| black_box(fuse_reports(black_box(&reports), &cals, &reid)))
    });
}

/// One miniature-resolution frame through each of the four detectors.
fn detect_bench(c: &mut Criterion) {
    let bank = DetectorBank::train_quick(5).expect("bank");
    let profile = DatasetProfile::miniature(DatasetId::Lab);
    let frame = VideoFeed::open(profile, 0)
        .annotated_frames(40, 46)
        .into_iter()
        .next()
        .expect("annotated frame")
        .image;
    let mut group = c.benchmark_group("detect_single_frame");
    for (alg, det) in bank.all() {
        group.bench_function(format!("{alg}"), |b| {
            b.iter(|| black_box(det.detect(black_box(&frame))))
        });
    }
    group.finish();
}

/// Per-kernel microbenches: the optimized detect path against the kept
/// pre-optimization reference of each algorithm, plus precompute-only and
/// cached-scan slices of the C4 pipeline. Before any timing, each pair is
/// asserted bit-identical on the bench frame, so a speedup can never be
/// reported for a path that drifted. Returns the C4 cascade reject ratio
/// (computed outside the timing loops).
fn kernel_bench(c: &mut Criterion) -> f64 {
    let bank = DetectorBank::train_quick(5).expect("bank");
    let profile = DatasetProfile::miniature(DatasetId::Lab);
    let frame = VideoFeed::open(profile, 0)
        .annotated_frames(40, 46)
        .into_iter()
        .next()
        .expect("annotated frame")
        .image;

    let assert_same = |got: &eecs_detect::detection::DetectionOutput,
                       want: &eecs_detect::detection::DetectionOutput,
                       alg: &str| {
        assert_eq!(got.ops, want.ops, "{alg}: ops diverged from reference");
        assert_eq!(got.detections.len(), want.detections.len(), "{alg}: count");
        for (a, b) in got.detections.iter().zip(&want.detections) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{alg}: score bits");
            assert_eq!(a.bbox, b.bbox, "{alg}: bbox");
        }
    };
    assert_same(
        &bank.c4().detect(&frame),
        &bank.c4().detect_reference(&frame),
        "C4",
    );
    assert_same(
        &bank.hog().detect(&frame),
        &bank.hog().detect_reference(&frame),
        "HOG",
    );
    assert_same(
        &bank.lsvm().detect(&frame),
        &bank.lsvm().detect_reference(&frame),
        "LSVM",
    );
    assert_same(
        &bank.acf().detect(&frame),
        &bank.acf().detect_reference(&frame),
        "ACF",
    );

    let mut group = c.benchmark_group("kernels");
    group.bench_function("c4_optimized", |b| {
        b.iter(|| black_box(bank.c4().detect(black_box(&frame))))
    });
    group.bench_function("c4_reference", |b| {
        b.iter(|| black_box(bank.c4().detect_reference(black_box(&frame))))
    });
    group.bench_function("hog_optimized", |b| {
        b.iter(|| black_box(bank.hog().detect(black_box(&frame))))
    });
    group.bench_function("hog_reference", |b| {
        b.iter(|| black_box(bank.hog().detect_reference(black_box(&frame))))
    });
    group.bench_function("lsvm_optimized", |b| {
        b.iter(|| black_box(bank.lsvm().detect(black_box(&frame))))
    });
    group.bench_function("lsvm_reference", |b| {
        b.iter(|| black_box(bank.lsvm().detect_reference(black_box(&frame))))
    });
    group.bench_function("acf_optimized", |b| {
        b.iter(|| black_box(bank.acf().detect(black_box(&frame))))
    });
    group.bench_function("acf_reference", |b| {
        b.iter(|| black_box(bank.acf().detect_reference(black_box(&frame))))
    });
    // Pipeline slices: per-level precompute alone (fresh cache every
    // iteration, so each level's code plane is rebuilt) and the scan alone
    // (cache warmed once, so iterations measure pure window scoring).
    let c4_cfg = bank.c4().config().clone();
    group.bench_function("c4_precompute_levels", |b| {
        b.iter(|| {
            let cache = FrameFeatures::new(&frame);
            let (iw, ih) = (c4_cfg.internal_w, c4_cfg.internal_h);
            for scale in c4_cfg.scales.usable_scales(iw, ih) {
                let (sw, sh) = ScaleSchedule::level_dims(scale, iw, ih);
                let _ = black_box(cache.census_codes(iw, ih, sw, sh));
            }
        })
    });
    let warmed = FrameFeatures::new(&frame);
    let _ = bank.c4().detect_with_cache(&frame, &warmed);
    group.bench_function("c4_scan_cached", |b| {
        b.iter(|| black_box(bank.c4().detect_with_cache(black_box(&frame), &warmed)))
    });
    group.finish();

    let (windows, rejected) = bank.c4().cascade_stats(&frame);
    if windows == 0 {
        0.0
    } else {
        rejected as f64 / windows as f64
    }
}

fn round_sim(parallel: Parallelism) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(5).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 70,
            budget_j_per_frame: 10.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
            sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
            parallel,
        },
    )
    .expect("prepare")
}

/// The full round, serial (1 worker, no cache) vs parallel (auto workers,
/// shared frame-feature cache). Both must produce the identical report —
/// the parallel pipeline only changes wall-clock.
fn round_bench(c: &mut Criterion) {
    let serial = round_sim(Parallelism::serial());
    let parallel = round_sim(Parallelism::default());
    assert_eq!(
        serial.run().expect("serial run"),
        parallel.run().expect("parallel run"),
        "parallelism must not change the report"
    );
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("full_eecs_round_serial", |b| {
        b.iter(|| black_box(serial.run().expect("run")))
    });
    group.bench_function("full_eecs_round_parallel", |b| {
        b.iter(|| black_box(parallel.run().expect("run")))
    });
    group.finish();
}

/// A 2×2×2 (budget × fault-seed × churn) grid over the miniature round
/// simulation, run through the sweep engine. Cells pin
/// `Parallelism::serial()` — under the engine the cell is the unit of
/// parallelism. The churn axis removes camera 3 for the (single) round,
/// so half the grid plans around a three-camera fleet.
fn sweep_shard(base: &Simulation) -> Shard<'_> {
    let spec = SweepSpec::new("bench_grid")
        .axis("budget", ["8.0", "12.0"])
        .axis("fault_seed", ["1", "2"])
        .axis("churn", ["0", "1"]);
    Shard::new(spec, move |job| {
        let budget: f64 = job.value("budget").unwrap().parse().unwrap();
        let seed: u64 = job.value("fault_seed").unwrap().parse().unwrap();
        let churn = match job.value("churn").unwrap() {
            "1" => eecs_net::fault::ChurnPlan::seeded(seed).with_leave(3, 0, 1),
            _ => eecs_net::fault::ChurnPlan::ideal(),
        };
        let report = base
            .with_budget(budget)
            .map_err(|e| e.to_string())?
            .with_faults(
                eecs_net::fault::FaultPlan::seeded(seed),
                eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
                eecs_net::fault::ControllerFaultPlan::none(),
            )
            .with_churn(churn)
            .run()
            .map_err(|e| e.to_string())?;
        Ok(report::Json::Obj(vec![
            (
                "detected".into(),
                report::Json::Num(report.correctly_detected as f64),
            ),
            ("energy_j".into(), report::Json::Num(report.total_energy_j)),
            (
                "leaves".into(),
                report::Json::Num(report.camera_leaves as f64),
            ),
        ]))
    })
}

/// The elastic-fleet benches. The end-to-end side: a three-round
/// mission whose churn plan takes camera 3 out for round 1 and brings
/// it back at round 2, timed next to the fixed-fleet mission. The
/// microbench side: `churn_replan` times exactly the controller
/// bookkeeping one departure + rejoin costs — quarantine purge, sticky
/// plan retain, and stale assessment-cache eviction — which is what
/// `churn_replan_ns` reports.
fn churn_bench(c: &mut Criterion) {
    let sim = Simulation::prepare(
        DetectorBank::train_quick(5).expect("bank"),
        sim_config_three_rounds(),
    )
    .expect("prepare");
    let churned = sim.with_churn(eecs_net::fault::ChurnPlan::seeded(3).with_leave(3, 1, 2));
    // The plan fired, and the run replays bit-identically — a perf
    // number for a nondeterministic path would be meaningless.
    let probe = churned.run().expect("churn mission");
    assert_eq!(probe.camera_leaves, 1, "churn plan never fired");
    assert_eq!(probe.camera_joins, 1, "camera 3 never rejoined");
    assert_eq!(probe, churned.run().expect("churn replay"));

    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("full_eecs_mission_3rounds", |b| {
        b.iter(|| black_box(sim.run().expect("run")))
    });
    group.bench_function("full_eecs_mission_3rounds_churn", |b| {
        b.iter(|| black_box(churned.run().expect("run")))
    });
    group.finish();

    // Controller-state bookkeeping for one departure + rejoin, on state
    // sized like a busy 4-camera mission.
    use eecs_core::controller::{AssessmentCache, QuarantineLedger, QuarantinePolicy};
    use eecs_core::metadata::CameraReport;
    use eecs_detect::detection::AlgorithmId;
    let policy = QuarantinePolicy::default();
    let algs = [
        AlgorithmId::Hog,
        AlgorithmId::Acf,
        AlgorithmId::C4,
        AlgorithmId::Lsvm,
    ];
    c.bench_function("churn_replan", |b| {
        b.iter(|| {
            let mut ledger = QuarantineLedger::new();
            let mut cache = AssessmentCache::new(4);
            let mut plan: std::collections::BTreeMap<usize, AlgorithmId> =
                (0..4).map(|j| (j, algs[j])).collect();
            let mut active: Vec<usize> = (0..4).collect();
            for cam in 0..4 {
                for &alg in &algs {
                    ledger.report_unhealthy(cam, alg, 0, &policy);
                }
                let mut assessment = eecs_core::controller::CameraAssessment::new();
                assessment.insert(algs[cam], vec![CameraReport { objects: vec![] }]);
                cache.record(cam, 0, assessment);
            }
            // Departure: purge quarantine, drop sticky plan entries.
            let purged = ledger.purge_camera(3);
            plan.remove(&3);
            active.retain(|&j| j != 3);
            // Rejoin two rounds later: evict what went stale meanwhile.
            let evicted = cache.evict_stale(3, 2, 1);
            black_box((purged, evicted, plan.len(), active.len()))
        })
    });
}

/// The three-round variant of the miniature mission config.
fn sim_config_three_rounds() -> SimulationConfig {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    SimulationConfig {
        profile,
        cameras: 4,
        start_frame: 40,
        end_frame: 130,
        budget_j_per_frame: 10.0,
        mode: OperatingMode::FullEecs,
        eecs,
        feature_words: 12,
        max_training_frames: 8,
        boost_every: 0,
        fault_plan: eecs_net::fault::FaultPlan::ideal(),
        sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
        controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
        parallel: Parallelism::default(),
    }
}

/// The same sweep at 1 worker vs 4 workers. The engine guarantees the
/// merged bytes are identical (asserted here once, outside the timing
/// loop); the worker count only changes wall-clock.
fn sweep_bench(c: &mut Criterion) {
    let base = round_sim(Parallelism::serial());
    let shard = sweep_shard(&base);
    let sweep = |workers: usize| {
        run_sweep(
            &shard,
            &SweepOptions {
                workers,
                ..Default::default()
            },
        )
        .expect("bench sweep")
        .merged
        .expect("bench sweep merge")
    };
    assert_eq!(
        sweep(1),
        sweep(4),
        "worker count must not change the merged bytes"
    );
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("grid2x2_serial", |b| b.iter(|| black_box(sweep(1))));
    group.bench_function("grid2x2_4workers", |b| b.iter(|| black_box(sweep(4))));
    group.finish();
}

/// Mission-service throughput: one 4-mission batch through the service
/// at 1 worker vs 4 workers. The schedule is a pure function of the
/// seed, so both produce the identical service trace — asserted once
/// here, outside the timing loop — and the worker count only changes
/// wall-clock. The `Artifacts` cache means both services (and every
/// timed iteration) reuse one training pass.
fn serve_bench(c: &mut Criterion) {
    use eecs_serve::{BatchOptions, MissionService, ServiceConfig};
    let artifacts = Artifacts::quick_trained(Scale::Quick, 5);
    let base = service_base(&artifacts);
    let batch = mixed_batch(4, &["acme", "zenith"], false);
    let config = ServiceConfig::new(11).with_slots(2).with_queue_capacity(4);
    let run = |workers: usize| {
        MissionService::new(base.clone(), config.clone().with_workers(workers))
            .run_batch(&batch, &BatchOptions::default())
            .expect("service batch")
            .run
            .expect("assembled run")
            .trace_bytes()
    };
    assert_eq!(
        run(1),
        run(4),
        "worker count must not change the service trace"
    );
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("batch4_serial", |b| b.iter(|| black_box(run(1))));
    group.bench_function("batch4_4workers", |b| b.iter(|| black_box(run(4))));
    group.finish();
}

/// Repo-root path of the machine-readable report.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");

fn main() {
    // `cargo bench` passes --bench; anything else (notably this target
    // executed during `cargo test`) is a smoke invocation and must stay
    // fast.
    if !std::env::args().any(|a| a == "--bench") {
        println!("pipeline bench: pass --bench (cargo bench) to run");
        return;
    }
    let mut c = Criterion::new();
    reid_bench(&mut c);
    detect_bench(&mut c);
    let cascade_reject_ratio = kernel_bench(&mut c);
    round_bench(&mut c);
    churn_bench(&mut c);
    sweep_bench(&mut c);
    serve_bench(&mut c);

    let entries: Vec<BenchEntry> = c
        .results()
        .iter()
        .map(|(name, mean_ns)| BenchEntry {
            name: name.clone(),
            mean_ns: *mean_ns,
        })
        .collect();
    let serial_ns = c
        .mean_ns("simulation/full_eecs_round_serial")
        .expect("serial round ran");
    let parallel_ns = c
        .mean_ns("simulation/full_eecs_round_parallel")
        .expect("parallel round ran")
        .max(1);
    let speedup = serial_ns as f64 / parallel_ns as f64;
    let sweep_serial_ns = c.mean_ns("sweep/grid2x2_serial").expect("serial sweep ran");
    let sweep_parallel_ns = c
        .mean_ns("sweep/grid2x2_4workers")
        .expect("4-worker sweep ran")
        .max(1);
    let sweep_speedup = sweep_serial_ns as f64 / sweep_parallel_ns as f64;
    // Interpretation key for the speedups: the parallel round / 4-worker
    // sweep fan out over this many cores. On a single-core host both
    // reduce to ~1× (the round keeps its feature-cache gain); a 4-core
    // host is where the ≥2× sweep expectation applies.
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut metrics = vec![
        ("round_speedup".to_string(), speedup),
        ("sweep_speedup".to_string(), sweep_speedup),
    ];
    // Kernel speedups: optimized vs reference of the SAME run — the ratio
    // is host-independent, which is what lets `check_bench --baseline`
    // compare it across runs where absolute ns are incomparable.
    for alg in ["c4", "hog", "lsvm", "acf"] {
        let opt = c
            .mean_ns(&format!("kernels/{alg}_optimized"))
            .expect("kernel optimized ran")
            .max(1);
        let reference = c
            .mean_ns(&format!("kernels/{alg}_reference"))
            .expect("kernel reference ran");
        let ratio = reference as f64 / opt as f64;
        println!("kernel speedup {alg} (reference/optimized): {ratio:.2}x");
        metrics.push((format!("kernel_speedup_{alg}"), ratio));
    }
    metrics.push(("c4_cascade_reject_ratio".into(), cascade_reject_ratio));
    metrics.push(("host_parallelism".into(), host as f64));
    // The controller-side cost of one departure + rejoin (quarantine
    // purge, sticky-plan retain, stale-cache eviction), straight from
    // the microbench — unlike a mission-level difference this is not
    // noise-dominated (a departed camera makes the mission *cheaper*).
    let churn_replan_ns = c.mean_ns("churn_replan").expect("churn_replan ran") as f64;
    println!("churn replan bookkeeping: {churn_replan_ns:.0} ns");
    metrics.push(("churn_replan_ns".into(), churn_replan_ns));
    // Service throughput: same batch, 1 worker vs 4 — like the sweep
    // speedup, a host-relative ratio over byte-identical outputs.
    let serve_serial_ns = c.mean_ns("serve/batch4_serial").expect("serial serve ran");
    let serve_parallel_ns = c
        .mean_ns("serve/batch4_4workers")
        .expect("4-worker serve ran")
        .max(1);
    let serve_speedup = serve_serial_ns as f64 / serve_parallel_ns as f64;
    println!("serve speedup (1 worker / 4 workers): {serve_speedup:.2}x");
    metrics.push(("serve_speedup".into(), serve_speedup));
    let text = report::render(&entries, &metrics);
    report::validate_pipeline_report(&text).expect("generated report validates");
    std::fs::write(REPORT_PATH, &text).expect("write BENCH_pipeline.json");
    println!("round speedup (serial/parallel): {speedup:.2}x");
    println!("sweep speedup (1 worker / 4 workers): {sweep_speedup:.2}x");
    println!("C4 cascade reject ratio: {cascade_reject_ratio:.3}");
    println!("wrote {REPORT_PATH}");
}
