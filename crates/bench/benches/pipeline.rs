//! End-to-end pipeline benchmarks: cross-camera re-identification fusion
//! and a full assessment → selection → operation round on the miniature
//! dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use eecs_core::config::EecsConfig;
use eecs_core::metadata::{CameraReport, ObjectMetadata};
use eecs_core::reid::{fuse_reports, ReidConfig};
use eecs_core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::BBox;
use eecs_geometry::calibration::{landmark_grid, GroundCalibration};
use eecs_geometry::camera::Camera;
use eecs_geometry::point::{Point2, Point3};
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use std::hint::black_box;

fn reid_bench(c: &mut Criterion) {
    // 4 cameras × 8 people per frame.
    let lm = landmark_grid(10.0, 5);
    let mut cams = Vec::new();
    let mut cals = Vec::new();
    for k in 0..4 {
        let angle = k as f64 / 4.0 * std::f64::consts::TAU;
        let cam = Camera::new(
            Point3::new(5.0 + 8.0 * angle.cos(), 5.0 + 8.0 * angle.sin(), 2.8),
            angle + std::f64::consts::PI,
            0.33,
            320.0,
            360,
            288,
        );
        cals.push(GroundCalibration::from_camera(&cam, &lm).unwrap());
        cams.push(cam);
    }
    let reports: Vec<CameraReport> = cams
        .iter()
        .enumerate()
        .map(|(j, cam)| CameraReport {
            objects: (0..8)
                .filter_map(|i| {
                    let a = i as f64 / 8.0 * std::f64::consts::TAU;
                    let t = Point2::new(5.0 + 2.5 * a.cos(), 5.0 + 2.5 * a.sin());
                    cam.person_bbox(&t, 1.7, 0.5)
                        .ok()
                        .map(|(x0, y0, x1, y1)| ObjectMetadata {
                            camera: j,
                            bbox: BBox::new(x0, y0, x1, y1),
                            probability: 0.8,
                            color: vec![i as f64 * 0.1; 8],
                        })
                })
                .collect(),
        })
        .collect();
    let reid = ReidConfig {
        ground_gate_m: 0.9,
        color_gate: 8.0,
        color_metric: None,
    };
    c.bench_function("reid_fuse_4cams_8people", |b| {
        b.iter(|| black_box(fuse_reports(black_box(&reports), &cals, &reid)))
    });
}

fn round_bench(c: &mut Criterion) {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let mut eecs = EecsConfig::default();
    eecs.assessment_period = 10;
    eecs.recalibration_interval = 30;
    eecs.key_frames = 8;
    let sim = Simulation::prepare(
        DetectorBank::train_quick(5).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 70,
            budget_j_per_frame: 10.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
        },
    )
    .expect("prepare");
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("full_eecs_round_miniature", |b| {
        b.iter(|| black_box(sim.run().expect("run")))
    });
    group.finish();
}

criterion_group!(benches, reid_bench, round_bench);
criterion_main!(benches);
