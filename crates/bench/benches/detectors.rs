//! Per-frame detector cost — the microbenchmark behind the energy/time
//! columns of Tables II–IV: each of the four algorithms on a lab-resolution
//! (360×288) and a chap-resolution (1024×768) frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eecs_detect::bank::DetectorBank;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::VideoFeed;
use std::hint::black_box;

fn detector_benches(c: &mut Criterion) {
    let bank = DetectorBank::train_quick(7).expect("bank");
    let mut group = c.benchmark_group("detect_frame");
    group.sample_size(10);
    for id in [DatasetId::Lab, DatasetId::Chap] {
        let profile = DatasetProfile::for_id(id);
        let frame = VideoFeed::open(profile, 0).frame(0).image;
        for (alg, det) in bank.all() {
            group.bench_with_input(
                BenchmarkId::new(alg.to_string(), id.to_string()),
                &frame,
                |b, frame| b.iter(|| black_box(det.detect(black_box(frame)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, detector_benches);
criterion_main!(benches);
