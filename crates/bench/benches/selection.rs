//! Selection-algorithm benchmarks and the greedy-vs-exhaustive ablation
//! (DESIGN.md §5): the greedy camera-subset choice of Section IV-B.3
//! against brute-force enumeration of all camera subsets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eecs_core::config::EecsConfig;
use eecs_core::metadata::{CameraReport, ObjectMetadata};
use eecs_core::profile::{AlgorithmProfile, TrainingRecord};
use eecs_core::reid::ReidConfig;
use eecs_core::selection::{select_cameras_and_algorithms, AssessmentData};
use eecs_detect::detection::{AlgorithmId, BBox};
use eecs_detect::probability::ScoreCalibration;
use eecs_energy::budget::EnergyBudget;
use eecs_geometry::calibration::{landmark_grid, GroundCalibration};
use eecs_geometry::camera::Camera;
use eecs_geometry::point::{Point2, Point3};
use eecs_linalg::Mat;
use eecs_manifold::video::VideoItem;
use std::collections::BTreeMap;
use std::hint::black_box;

fn profile(algorithm: AlgorithmId, f_score: f64, energy: f64) -> AlgorithmProfile {
    AlgorithmProfile {
        algorithm,
        threshold: 0.0,
        recall: f_score,
        precision: f_score,
        f_score,
        energy_per_frame_j: energy,
        processing_time_s: energy,
        calibration: ScoreCalibration::from_parts(1.0, 0.0),
    }
}

fn record() -> TrainingRecord {
    TrainingRecord::new(
        "T",
        VideoItem::new("T", Mat::from_fn(3, 4, |i, j| (i + j + 1) as f64)).unwrap(),
        vec![
            profile(AlgorithmId::Hog, 0.74, 1.08),
            profile(AlgorithmId::Acf, 0.66, 0.07),
        ],
    )
    .unwrap()
}

/// A rig of `m` cameras on a circle plus assessment data where every camera
/// sees every one of `people` targets.
fn setup(m: usize, people: usize) -> (Vec<GroundCalibration>, AssessmentData) {
    let lm = landmark_grid(10.0, 5);
    let mut cals = Vec::new();
    let mut cams = Vec::new();
    for k in 0..m {
        let angle = k as f64 / m as f64 * std::f64::consts::TAU;
        let cam = Camera::new(
            Point3::new(5.0 + 8.0 * angle.cos(), 5.0 + 8.0 * angle.sin(), 2.8),
            angle + std::f64::consts::PI,
            0.33,
            320.0,
            360,
            288,
        );
        cals.push(GroundCalibration::from_camera(&cam, &lm).unwrap());
        cams.push(cam);
    }
    let targets: Vec<Point2> = (0..people)
        .map(|i| {
            let a = i as f64 / people as f64 * std::f64::consts::TAU;
            Point2::new(5.0 + 2.0 * a.cos(), 5.0 + 2.0 * a.sin())
        })
        .collect();
    let mut reports = Vec::new();
    for (j, cam) in cams.iter().enumerate() {
        let mut by_alg = BTreeMap::new();
        for (alg, p) in [(AlgorithmId::Hog, 0.9), (AlgorithmId::Acf, 0.75)] {
            let objects: Vec<ObjectMetadata> = targets
                .iter()
                .filter_map(|t| {
                    cam.person_bbox(t, 1.7, 0.5)
                        .ok()
                        .map(|(x0, y0, x1, y1)| ObjectMetadata {
                            camera: j,
                            bbox: BBox::new(x0, y0, x1, y1),
                            probability: p,
                            color: vec![0.5; 3],
                        })
                })
                .collect();
            by_alg.insert(alg, vec![CameraReport { objects }]);
        }
        reports.push(by_alg);
    }
    (cals, AssessmentData { reports })
}

fn selection_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    let reid = ReidConfig {
        ground_gate_m: 0.9,
        color_gate: 8.0,
        color_metric: None,
    };
    let config = EecsConfig::default();
    for &m in &[4usize, 8, 12] {
        let (cals, data) = setup(m, 6);
        let rec = record();
        let records: Vec<&TrainingRecord> = vec![&rec; m];
        let budgets = vec![EnergyBudget::per_frame(1.2).unwrap(); m];
        group.bench_with_input(BenchmarkId::new("greedy", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    select_cameras_and_algorithms(
                        &data, &records, &budgets, &cals, &config, &reid, true,
                    )
                    .unwrap(),
                )
            })
        });
        // Exhaustive ablation: evaluate every non-empty camera subset with
        // best algorithms and keep the cheapest one meeting the bar.
        group.bench_with_input(BenchmarkId::new("exhaustive", m), &m, |b, _| {
            b.iter(|| {
                let mut best_assign: BTreeMap<usize, AlgorithmId> = BTreeMap::new();
                for j in 0..m {
                    best_assign.insert(j, AlgorithmId::Hog);
                }
                let baseline = data.accuracy_for(&best_assign, &cals, &reid);
                let needed =
                    eecs_core::accuracy::DesiredAccuracy::from_baseline(&baseline, 0.85, 0.8);
                let mut best: Option<(usize, BTreeMap<usize, AlgorithmId>)> = None;
                for mask in 1u32..(1 << m) {
                    let assign: BTreeMap<usize, AlgorithmId> = (0..m)
                        .filter(|j| mask & (1 << j) != 0)
                        .map(|j| (j, AlgorithmId::Hog))
                        .collect();
                    let acc = data.accuracy_for(&assign, &cals, &reid);
                    if needed.met_by(&acc) {
                        let size = assign.len();
                        if best.as_ref().map(|(s, _)| size < *s).unwrap_or(true) {
                            best = Some((size, assign));
                        }
                    }
                }
                black_box(best)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, selection_benches);
criterion_main!(benches);
