//! Video-similarity cost (Section III / Table V) and the DESIGN.md §5
//! ablation: Grassmann GFK similarity vs naive Euclidean mean-feature
//! distance, at the compact feature size and at the paper's full 4180-d.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eecs_manifold::similarity::{video_similarity, SimilarityConfig};
use eecs_manifold::video::VideoItem;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn make_item(k: usize, alpha: usize, seed: u64) -> VideoItem {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<f64> = (0..alpha).map(|_| rng.random_range(0.0..1.0)).collect();
    let frames: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            base.iter()
                .map(|&b| b + rng.random_range(-0.1..0.1))
                .collect()
        })
        .collect();
    VideoItem::from_frames("bench", &frames).unwrap()
}

fn naive_similarity(t: &VideoItem, v: &VideoItem) -> f64 {
    let mean = |item: &VideoItem| -> Vec<f64> {
        let k = item.num_frames() as f64;
        let mut m = vec![0.0; item.feature_dim()];
        for row in item.features().iter_rows() {
            for (acc, &x) in m.iter_mut().zip(row) {
                *acc += x;
            }
        }
        m.iter().map(|x| x / k).collect()
    };
    let (mt, mv) = (mean(t), mean(v));
    let d2: f64 = mt.iter().zip(&mv).map(|(a, b)| (a - b) * (a - b)).sum();
    (-d2.sqrt()).exp()
}

fn similarity_benches(c: &mut Criterion) {
    let cfg = SimilarityConfig {
        beta: 10,
        scale: 1.0,
    };
    let mut group = c.benchmark_group("video_similarity");
    group.sample_size(10);
    // Compact feature size (the default pipeline) and the paper's 4180-d.
    for &(k, alpha) in &[(30usize, 232usize), (30, 4180)] {
        let t = make_item(k, alpha, 1);
        let v = make_item(k, alpha, 2);
        group.bench_with_input(
            BenchmarkId::new("gfk", format!("k{k}_a{alpha}")),
            &(&t, &v),
            |b, (t, v)| b.iter(|| black_box(video_similarity(t, v, &cfg).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("k{k}_a{alpha}")),
            &(&t, &v),
            |b, (t, v)| b.iter(|| black_box(naive_similarity(t, v))),
        );
    }
    group.finish();
}

criterion_group!(benches, similarity_benches);
criterion_main!(benches);
