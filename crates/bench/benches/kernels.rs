//! Numerical-kernel microbenchmarks: the SVD/eigen/PCA primitives the
//! Grassmann pipeline leans on, plus homography estimation and RANSAC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eecs_geometry::homography::Homography;
use eecs_geometry::point::Point2;
use eecs_geometry::ransac::{ransac_homography, RansacConfig};
use eecs_linalg::eig::symmetric_eigen;
use eecs_linalg::pca::Pca;
use eecs_linalg::svd::thin_svd;
use eecs_linalg::Mat;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
}

fn kernel_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    for &n in &[8usize, 16, 32] {
        let a = random_mat(n, n, n as u64);
        group.bench_with_input(BenchmarkId::new("svd", n), &a, |b, a| {
            b.iter(|| black_box(thin_svd(black_box(a))))
        });
        let sym = a.transpose_matmul(&a).unwrap();
        group.bench_with_input(BenchmarkId::new("eigen", n), &sym, |b, s| {
            b.iter(|| black_box(symmetric_eigen(black_box(s)).unwrap()))
        });
    }
    // Snapshot PCA at video-item scale: 100 key frames × 232 features.
    let wide = random_mat(100, 232, 9);
    group.bench_function("pca_snapshot_100x232", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&wide), 10).unwrap()))
    });
    group.finish();

    let mut geo = c.benchmark_group("geometry");
    let mut rng = StdRng::seed_from_u64(3);
    let src: Vec<Point2> = (0..40)
        .map(|_| Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect();
    let dst: Vec<Point2> = src
        .iter()
        .map(|p| Point2::new(0.9 * p.x - 0.1 * p.y + 3.0, 0.2 * p.x + 1.1 * p.y - 5.0))
        .collect();
    geo.bench_function("homography_dlt_40pts", |b| {
        b.iter(|| black_box(Homography::estimate(black_box(&src), black_box(&dst)).unwrap()))
    });
    let mut noisy = dst.clone();
    for i in (0..noisy.len()).step_by(5) {
        noisy[i] = Point2::new(noisy[i].x + 300.0, noisy[i].y);
    }
    geo.bench_function("ransac_homography_40pts_20pct_outliers", |b| {
        b.iter(|| {
            black_box(
                ransac_homography(
                    black_box(&src),
                    black_box(&noisy),
                    &RansacConfig {
                        iterations: 200,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
    });
    geo.finish();
}

criterion_group!(benches, kernel_benches);
criterion_main!(benches);
