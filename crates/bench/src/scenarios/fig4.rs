//! Fig. 4 as a sweep: accuracy vs energy for fixed camera/algorithm mixes
//! on dataset #1 — one cell per mix, shared frames/records/calibrations
//! built lazily from the memoized [`Artifacts`].

use crate::artifacts::Artifacts;
use crate::scenarios::{cell_num, row, shard_cells};
use crate::sweep::{Shard, SweepSpec};
use crate::{fmt3, test_frames};
use eecs_core::accuracy::count_correct;
use eecs_core::jsonio::Json;
use eecs_core::metadata::{CameraReport, ObjectMetadata};
use eecs_core::profile::TrainingRecord;
use eecs_core::reid::{fuse_reports, ReidConfig};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::AlgorithmId;
use eecs_energy::comm::{metadata_bytes, LinkModel};
use eecs_energy::model::DeviceEnergyModel;
use eecs_geometry::calibration::GroundCalibration;
use eecs_geometry::point::Point2;
use eecs_scene::dataset::DatasetProfile;
use eecs_scene::rig::{camera_rig, rig_calibrations};
use eecs_scene::sequence::FrameData;
use eecs_vision::color::mean_color_feature;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

const GT_GATE_M: f64 = 1.2;

/// Vocabulary size shared with Table V.
pub const WORDS: usize = 24;

/// The paper's six camera/algorithm mixes, in figure order.
pub fn mixes() -> Vec<(&'static str, Vec<(usize, AlgorithmId)>)> {
    use AlgorithmId::{Acf, Hog};
    vec![
        ("2ACF", vec![(0, Acf), (1, Acf)]),
        ("HOG+ACF", vec![(0, Hog), (1, Acf)]),
        ("2HOG", vec![(0, Hog), (1, Hog)]),
        ("4ACF", vec![(0, Acf), (1, Acf), (2, Acf), (3, Acf)]),
        ("2HOG+2ACF", vec![(0, Hog), (1, Hog), (2, Acf), (3, Acf)]),
        ("4HOG", vec![(0, Hog), (1, Hog), (2, Hog), (3, Hog)]),
    ]
}

/// The Fig. 4 grid: one axis, one cell per mix.
pub fn spec() -> SweepSpec {
    SweepSpec::new("fig4").axis("config", mixes().iter().map(|(name, _)| *name))
}

/// Everything a cell needs beyond its mix, built once on first use.
struct Ctx {
    records: Vec<Arc<TrainingRecord>>,
    calibrations: Vec<GroundCalibration>,
    frames: Vec<Vec<FrameData>>,
    device: DeviceEnergyModel,
    link: LinkModel,
    reid: ReidConfig,
    min_visibility: f64,
}

fn build_ctx(artifacts: &Artifacts) -> Ctx {
    let profile = DatasetProfile::lab();
    let config = artifacts.config();
    let records = (0..4)
        .map(|cam| artifacts.record(&profile, cam, WORDS))
        .collect();
    let rig = camera_rig(&profile);
    let calibrations = rig_calibrations(&profile, &rig);
    let frames = (0..4)
        .map(|cam| test_frames(&profile, cam, artifacts.scale()))
        .collect();
    Ctx {
        records,
        calibrations,
        frames,
        device: config.device,
        link: config.link,
        reid: ReidConfig {
            ground_gate_m: config.reid_ground_gate_m,
            color_gate: config.reid_color_gate,
            color_metric: None,
        },
        min_visibility: config.eval.min_visibility,
    }
}

/// The Fig. 4 shard over shared artifacts.
pub fn shard(artifacts: &Artifacts) -> Shard<'_> {
    let ctx: OnceLock<Ctx> = OnceLock::new();
    Shard::new(spec(), move |job| {
        let name = job.value("config").ok_or("cell without a config axis")?;
        let mixes = mixes();
        let (_, assignment) = mixes
            .iter()
            .find(|(n, _)| *n == name)
            .ok_or_else(|| format!("unknown Fig. 4 config {name:?}"))?;
        let ctx = ctx.get_or_init(|| build_ctx(artifacts));
        let (correct, gt, energy) = run_config(assignment, &artifacts.bank(), ctx);
        Ok(Json::Obj(vec![
            ("detected".into(), Json::Num(correct as f64)),
            ("gt".into(), Json::Num(gt as f64)),
            ("energy_j".into(), Json::Num(energy)),
        ]))
    })
}

/// Renders the figure table from a merged sweep document.
///
/// # Errors
///
/// Returns an error when the document lacks the Fig. 4 shard or a field.
pub fn format(doc: &Json) -> Result<String, String> {
    let widths = [11usize, 10, 10, 10, 12];
    let mut out = String::from("== Fig. 4: accuracy vs energy, dataset #1 ==\n");
    out.push_str(&row(
        &[
            "config".into(),
            "detected".into(),
            "gt".into(),
            "recall".into(),
            "energy (J)".into(),
        ],
        &widths,
    ));
    for ((name, _), (_, data)) in mixes().iter().zip(shard_cells(doc, "fig4")?) {
        let detected = cell_num(data, "detected")?;
        let gt = cell_num(data, "gt")?;
        out.push_str(&row(
            &[
                (*name).into(),
                format!("{detected}"),
                format!("{gt}"),
                fmt3(detected / gt.max(1.0)),
                fmt3(cell_num(data, "energy_j")?),
            ],
            &widths,
        ));
    }
    Ok(out)
}

/// Runs one fixed configuration over all test frames; returns
/// `(correct, gt_total, energy_j)`.
fn run_config(
    assignment: &[(usize, AlgorithmId)],
    bank: &DetectorBank,
    ctx: &Ctx,
) -> (usize, usize, f64) {
    let (device, link) = (&ctx.device, &ctx.link);
    let n = ctx.frames[0].len();
    let mut correct = 0usize;
    let mut gt_total = 0usize;
    let mut energy = 0.0f64;
    for f in 0..n {
        let mut reports = Vec::new();
        for &(cam, alg) in assignment {
            let frame = &ctx.frames[cam][f];
            let p = ctx.records[cam].profile(alg).expect("algorithm profiled");
            let out = bank.detector(alg).detect(&frame.image);
            energy += device.processing_energy(out.ops);
            let mut objects = Vec::new();
            for det in out.detections.iter().filter(|d| d.score >= p.threshold) {
                let color = clip_color(&frame.image, det.bbox);
                objects.push(ObjectMetadata {
                    camera: cam,
                    bbox: det.bbox,
                    probability: p.calibration.probability(det.score),
                    color,
                });
            }
            energy += link.transmit_energy(metadata_bytes(objects.len()) + 16, device);
            reports.push(CameraReport { objects });
        }
        let fused = fuse_reports(&reports, &ctx.calibrations, &ctx.reid);
        // Ground truth: union over the *participating* cameras.
        let mut gt: BTreeMap<usize, Point2> = BTreeMap::new();
        for &(cam, _) in assignment {
            for g in &ctx.frames[cam][f].gt {
                if g.visibility >= ctx.min_visibility {
                    gt.entry(g.human_id).or_insert(g.ground);
                }
            }
        }
        let positions: Vec<Point2> = gt.values().copied().collect();
        correct += count_correct(&fused, &positions, GT_GATE_M);
        gt_total += positions.len();
    }
    (correct, gt_total, energy)
}

fn clip_color(img: &eecs_vision::image::RgbImage, bbox: eecs_detect::detection::BBox) -> Vec<f64> {
    let x0 = bbox.x0.max(0.0) as usize;
    let y0 = bbox.y0.max(0.0) as usize;
    let x1 = (bbox.x1.min(img.width() as f64) as usize).min(img.width());
    let y1 = (bbox.y1.min(img.height() as f64) as usize).min(img.height());
    if x1 <= x0 + 1 || y1 <= y0 + 1 {
        return vec![0.0; eecs_vision::color::MEAN_COLOR_DIM];
    }
    mean_color_feature(img, x0, y0, x1 - x0, y1 - y0)
        .unwrap_or_else(|_| vec![0.0; eecs_vision::color::MEAN_COLOR_DIM])
}
