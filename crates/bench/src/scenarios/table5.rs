//! Table V as a sweep: the 12×12 video-similarity matrix, one cell per
//! training row (each cell computes that row's 12 similarities), with the
//! featurized train/test windows shared lazily across cells.
//!
//! The `naive` variant (DESIGN.md §5 ablation) is a *differently named*
//! spec — `table5_naive` — so its manifest and merged document can never
//! be confused with the manifold run.

use crate::artifacts::Artifacts;
use crate::scenarios::shard_cells;
use crate::sweep::{Shard, SweepSpec};
use crate::Scale;
use eecs_core::features::FeatureExtractor;
use eecs_core::jsonio::Json;
use eecs_learn::split::sample_windows;
use eecs_manifold::similarity::{video_similarity, SimilarityConfig};
use eecs_manifold::video::VideoItem;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::VideoFeed;
use std::sync::OnceLock;

/// Vocabulary size shared with Fig. 4.
pub const WORDS: usize = 24;

/// The 12 item names, `1.1` … `3.4`, in dataset-then-camera order.
pub fn item_names() -> Vec<String> {
    DatasetId::ALL
        .iter()
        .flat_map(|id| (0..4).map(move |cam| format!("{}.{}", id.number(), cam + 1)))
        .collect()
}

/// The Table V grid: one cell per training row.
pub fn spec(naive: bool) -> SweepSpec {
    let name = if naive { "table5_naive" } else { "table5" };
    SweepSpec::new(name).axis("train", item_names())
}

/// The featurized sample windows every row needs.
struct Ctx {
    trains: Vec<Vec<VideoItem>>,
    tests: Vec<Vec<VideoItem>>,
}

fn build_ctx(artifacts: &Artifacts) -> Ctx {
    let scale = artifacts.scale();
    let (window, repeats, stride) = sampling(scale);
    let extractor = artifacts.extractor(WORDS);
    let mut trains = Vec::new();
    let mut tests = Vec::new();
    for id in DatasetId::ALL {
        let profile = DatasetProfile::for_id(id);
        let (train_end, test_end) = scale.bounds(&profile);
        for cam in 0..4 {
            let feed = VideoFeed::open(profile.clone(), cam);
            trains.push(sample_items(
                &feed,
                &extractor,
                0,
                train_end,
                window,
                repeats,
                stride,
                7 + cam as u64,
            ));
            tests.push(sample_items(
                &feed,
                &extractor,
                train_end,
                test_end,
                window,
                repeats,
                stride,
                1000 + cam as u64,
            ));
        }
    }
    Ctx { trains, tests }
}

/// The paper samples 100 frames × 5 repeats; we default to 60 × 3 (see
/// EXPERIMENTS.md).
fn sampling(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (60, 3, 2),
        Scale::Quick => (16, 1, 2),
    }
}

/// The Table V shard over shared artifacts.
pub fn shard(artifacts: &Artifacts, naive: bool) -> Shard<'_> {
    let ctx: OnceLock<Ctx> = OnceLock::new();
    let names = item_names();
    Shard::new(spec(naive), move |job| {
        let train = job.value("train").ok_or("cell without a train axis")?;
        let ti = names
            .iter()
            .position(|n| n == train)
            .ok_or_else(|| format!("unknown Table V row {train:?}"))?;
        let ctx = ctx.get_or_init(|| build_ctx(artifacts));
        let sim_cfg = SimilarityConfig {
            beta: 8,
            scale: 1.0,
        };
        let mut row = Vec::with_capacity(ctx.tests.len());
        for test_set in &ctx.tests {
            let mut total = 0.0;
            let mut count = 0usize;
            for (t, v) in ctx.trains[ti].iter().zip(test_set) {
                total += if naive {
                    naive_similarity(t, v)
                } else {
                    video_similarity(t, v, &sim_cfg).unwrap_or(0.0)
                };
                count += 1;
            }
            row.push(Json::Num(total / count.max(1) as f64));
        }
        Ok(Json::Obj(vec![("row".into(), Json::Arr(row))]))
    })
}

/// Renders the similarity matrix and the diagonal-match summary from a
/// merged sweep document.
///
/// # Errors
///
/// Returns an error when the document lacks the Table V shard or a field.
pub fn format(doc: &Json, naive: bool) -> Result<String, String> {
    let shard_name = if naive { "table5_naive" } else { "table5" };
    let names = item_names();
    let cells = shard_cells(doc, shard_name)?;
    let matrix: Vec<Vec<f64>> = cells
        .iter()
        .map(|(_, data)| {
            data.get("row")
                .and_then(Json::as_arr)
                .map(|r| r.iter().filter_map(Json::as_num).collect::<Vec<f64>>())
                .filter(|r| r.len() == names.len())
                .ok_or_else(|| format!("malformed Table V row in shard {shard_name:?}"))
        })
        .collect::<Result<_, _>>()?;
    if matrix.len() != names.len() {
        return Err(format!(
            "Table V expects {} rows, found {}",
            names.len(),
            matrix.len()
        ));
    }

    let mode = if naive {
        "naive Euclidean"
    } else {
        "manifold (GFK)"
    };
    let mut out = format!("== Table V: video similarities, {mode} ==\n");
    out.push_str(&format!("{:>8}", "T\\V"));
    for name in &names {
        out.push_str(&format!("{name:>7}"));
    }
    out.push('\n');
    for (ti, name) in names.iter().enumerate() {
        out.push_str(&format!("{name:>8}"));
        for v in &matrix[ti] {
            out.push_str(&format!("{v:>7.2}"));
        }
        out.push('\n');
    }

    // The paper's headline property: every test item matches the training
    // item of the same dataset and camera (argmax per column = diagonal).
    let n = names.len();
    let mut correct = 0;
    for vi in 0..n {
        let best = (0..n)
            .max_by(|&a, &b| matrix[a][vi].partial_cmp(&matrix[b][vi]).unwrap())
            .unwrap();
        if best == vi {
            correct += 1;
        } else {
            out.push_str(&format!(
                "MISMATCH: V_{} best matched T_{}\n",
                names[vi], names[best]
            ));
        }
    }
    out.push_str(&format!("\ndiagonal matches: {correct}/{n}\n"));
    Ok(out)
}

/// Extracts `repeats` video items of `window` frames (stride-subsampled)
/// from random positions in `[start, end)`.
#[allow(clippy::too_many_arguments)]
fn sample_items(
    feed: &VideoFeed,
    extractor: &FeatureExtractor,
    start: usize,
    end: usize,
    window: usize,
    repeats: usize,
    stride: usize,
    seed: u64,
) -> Vec<VideoItem> {
    let span = window * stride;
    let starts = sample_windows(start..end, span, repeats, seed).expect("range fits window");
    starts
        .into_iter()
        .enumerate()
        .map(|(r, s)| {
            let frames = feed.frames(s, s + span, stride);
            let images: Vec<_> = frames.into_iter().map(|f| f.image).collect();
            extractor
                .extract_video(format!("{}-r{}", feed.camera_index(), r), &images)
                .expect("feature extraction on simulator frames")
        })
        .collect()
}

/// The ablation comparator: similarity from the Euclidean distance between
/// mean feature vectors (no manifold projection).
fn naive_similarity(t: &VideoItem, v: &VideoItem) -> f64 {
    let mean = |item: &VideoItem| -> Vec<f64> {
        let k = item.num_frames() as f64;
        let mut m = vec![0.0; item.feature_dim()];
        for row in item.features().iter_rows() {
            for (acc, &x) in m.iter_mut().zip(row) {
                *acc += x;
            }
        }
        m.iter().map(|x| x / k).collect()
    };
    let (mt, mv) = (mean(t), mean(v));
    let d2: f64 = mt.iter().zip(&mv).map(|(a, b)| (a - b) * (a - b)).sum();
    (-d2.sqrt()).exp()
}
