//! Sweep-engine ports of the figure/table harnesses.
//!
//! Each scenario module exposes the same three-piece shape:
//!
//! * `spec()` — the declarative [`crate::sweep::SweepSpec`] grid,
//! * `shard(&Artifacts)` — a [`crate::sweep::Shard`] whose runner computes
//!   one cell from shared, memoized training artifacts (expensive context
//!   is built lazily, once, on first cell), and
//! * `format(&Json)` — the human-readable report rendered from the merged
//!   sweep document, byte-for-byte in canonical cell order.
//!
//! The binaries in `src/bin/` are thin wrappers: build artifacts, run the
//! shard (with a resumable manifest), write `SWEEP_<name>.json`, print the
//! formatted report.

pub mod fig4;
pub mod fig5;
pub mod table5;

use eecs_core::jsonio::Json;

/// Parses `--workers N` from the process arguments (`0` = auto).
pub fn workers_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--workers" {
            return args
                .next()
                .and_then(|n| n.parse().ok())
                .expect("--workers takes a count");
        }
    }
    0
}

/// Fixed-width table row as a string (the `String` twin of
/// [`crate::print_row`], so formatters can build reports offline).
pub(crate) fn row(cells: &[String], widths: &[usize]) -> String {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    format!("{}\n", line.trim_end())
}

/// Runs one scenario shard the way the figure binaries do: resumable
/// manifest at `<stem>.manifest.jsonl`, merged document written to
/// `<stem>.json`, formatted report printed to stdout. The manifest is a
/// crash journal, not a cache — it is deleted once the sweep completes,
/// so a finished binary always recomputes from scratch on its next run
/// while a killed one resumes.
///
/// # Errors
///
/// Returns sweep-engine, formatting, or I/O failures.
pub fn run_bin(
    shard: &crate::sweep::Shard<'_>,
    stem: &str,
    format: impl Fn(&Json) -> Result<String, String>,
) -> Result<(), String> {
    let manifest = std::path::PathBuf::from(format!("{stem}.manifest.jsonl"));
    let opts = crate::sweep::SweepOptions {
        workers: workers_from_args(),
        manifest_path: Some(manifest.clone()),
        progress: true,
        ..Default::default()
    };
    let outcome = crate::sweep::run_sweep(shard, &opts)?;
    if outcome.skipped > 0 {
        eprintln!(
            "resumed from {}: skipped {} completed cell(s)",
            manifest.display(),
            outcome.skipped
        );
    }
    let merged = outcome.merged.ok_or("sweep did not complete")?;
    let out = std::path::PathBuf::from(format!("{stem}.json"));
    std::fs::write(&out, &merged).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let doc = eecs_core::jsonio::parse(&merged)?;
    print!("{}", format(&doc)?);
    eprintln!("merged sweep written to {}", out.display());
    let _ = std::fs::remove_file(&manifest);
    Ok(())
}

/// Extracts one shard's `(cell id, data)` pairs, in canonical job order,
/// from a merged sweep document.
pub fn shard_cells<'a>(doc: &'a Json, shard: &str) -> Result<Vec<(&'a str, &'a Json)>, String> {
    let shards = doc
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or("merged sweep document has no \"shards\"")?;
    let section = shards
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(shard))
        .ok_or_else(|| format!("merged sweep document has no shard {shard:?}"))?;
    section
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("shard {shard:?} has no cells"))?
        .iter()
        .map(|c| {
            let id = c
                .get("cell")
                .and_then(Json::as_str)
                .ok_or("cell without an id")?;
            let data = c.get("data").ok_or("cell without data")?;
            Ok((id, data))
        })
        .collect()
}

/// Reads a required numeric field of a cell.
pub(crate) fn cell_num(data: &Json, key: &str) -> Result<f64, String> {
    data.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("cell is missing numeric field {key:?}"))
}
