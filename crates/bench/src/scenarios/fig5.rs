//! Fig. 5 as a sweep: detected humans vs energy on dataset #1 under two
//! budget regimes × three strategies — one cell per (regime, strategy),
//! all six derived from a single lazily prepared base [`Simulation`].

use crate::artifacts::Artifacts;
use crate::scenarios::{cell_num, row, shard_cells};
use crate::sweep::{Shard, SweepSpec};
use crate::{fmt3, Scale};
use eecs_core::jsonio::Json;
use eecs_core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs_detect::detection::AlgorithmId;
use eecs_scene::dataset::DatasetProfile;
use std::sync::OnceLock;

/// The Fig. 5 grid: budget regime × strategy.
pub fn spec() -> SweepSpec {
    SweepSpec::new("fig5")
        .axis("regime", ["5a", "5b"])
        .axis("strategy", ["all_best", "camera_subset", "full_eecs"])
}

/// The prepared base simulation plus the measured budget anchors.
struct Ctx {
    base: Simulation,
    hog_j: f64,
    acf_j: f64,
    budget_a: f64,
    budget_b: f64,
}

fn build_ctx(artifacts: &Artifacts) -> Result<Ctx, String> {
    let scale = artifacts.scale();
    let profile = DatasetProfile::lab();
    let (start, end) = scale.bounds(&profile);
    let base = Simulation::prepare(
        (*artifacts.bank()).clone(),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: start,
            end_frame: end,
            budget_j_per_frame: f64::MAX, // replaced per regime below
            mode: OperatingMode::AllBest,
            eecs: (*artifacts.config()).clone(),
            feature_words: 24,
            max_training_frames: if scale == Scale::Paper { 40 } else { 8 },
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
            sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
            // Cells are the unit of parallelism; each runs its rounds
            // serially so one live simulation per worker bounds memory.
            parallel: Parallelism::serial(),
        },
    )
    .map_err(|e| format!("Fig. 5 simulation preparation: {e}"))?;

    // Budgets derived from the *measured* profiles, as the paper derives
    // them from PowerTutor measurements.
    let record = base.record_for_camera(0);
    let hog_j = record
        .profile(AlgorithmId::Hog)
        .ok_or("HOG not profiled")?
        .energy_per_frame_j;
    let acf_j = record
        .profile(AlgorithmId::Acf)
        .ok_or("ACF not profiled")?
        .energy_per_frame_j;
    Ok(Ctx {
        base,
        hog_j,
        acf_j,
        budget_a: hog_j * 1.10,
        budget_b: acf_j + (hog_j - acf_j) * 0.3,
    })
}

/// The Fig. 5 shard over shared artifacts.
pub fn shard(artifacts: &Artifacts) -> Shard<'_> {
    let ctx: OnceLock<Result<Ctx, String>> = OnceLock::new();
    Shard::new(spec(), move |job| {
        let ctx = ctx
            .get_or_init(|| build_ctx(artifacts))
            .as_ref()
            .map_err(Clone::clone)?;
        let budget = match job.value("regime") {
            Some("5a") => ctx.budget_a,
            Some("5b") => ctx.budget_b,
            other => return Err(format!("unknown Fig. 5 regime {other:?}")),
        };
        let mode = match job.value("strategy") {
            Some("all_best") => OperatingMode::AllBest,
            Some("camera_subset") => OperatingMode::CameraSubset,
            Some("full_eecs") => OperatingMode::FullEecs,
            other => return Err(format!("unknown Fig. 5 strategy {other:?}")),
        };
        let report = ctx
            .base
            .with_budget(budget)
            .map_err(|e| format!("budget {budget}: {e}"))?
            .with_mode(mode)
            .run()
            .map_err(|e| format!("Fig. 5 cell run: {e}"))?;
        let mut data = vec![
            ("budget_j".into(), Json::Num(budget)),
            ("hog_j".into(), Json::Num(ctx.hog_j)),
            ("acf_j".into(), Json::Num(ctx.acf_j)),
            (
                "detected".into(),
                Json::Num(report.correctly_detected as f64),
            ),
            ("energy_j".into(), Json::Num(report.total_energy_j)),
        ];
        if mode == OperatingMode::FullEecs {
            // The first-round assignment gives the flavor of the adaptation.
            let assign = report.rounds[0]
                .assignment
                .iter()
                .map(|(cam, alg)| Json::Str(format!("cam{cam}:{alg}")))
                .collect();
            data.push(("first_assignment".into(), Json::Arr(assign)));
        }
        Ok(Json::Obj(data))
    })
}

/// Renders the two regime tables from a merged sweep document.
///
/// # Errors
///
/// Returns an error when the document lacks the Fig. 5 shard or a field.
pub fn format(doc: &Json) -> Result<String, String> {
    let cells = shard_cells(doc, "fig5")?;
    if cells.len() != 6 {
        return Err(format!("Fig. 5 expects 6 cells, found {}", cells.len()));
    }
    let mut out = format!(
        "measured per-frame cost: HOG {} J, ACF {} J\n",
        fmt3(cell_num(cells[0].1, "hog_j")?),
        fmt3(cell_num(cells[0].1, "acf_j")?),
    );
    let strategies = ["all cameras, best alg", "EECS camera subset", "EECS full"];
    let widths = [24usize, 10, 12, 12, 12];
    for (r, label) in [
        "Fig 5a: budget >= cost(HOG)",
        "Fig 5b: budget in [ACF, HOG)",
    ]
    .iter()
    .enumerate()
    {
        let regime = &cells[3 * r..3 * r + 3];
        out.push_str(&format!(
            "\n== {label} (B = {} J/frame) ==\n",
            fmt3(cell_num(regime[0].1, "budget_j")?)
        ));
        out.push_str(&row(
            &[
                "strategy".into(),
                "detected".into(),
                "% of base".into(),
                "energy (J)".into(),
                "% of base".into(),
            ],
            &widths,
        ));
        let base_detected = cell_num(regime[0].1, "detected")?;
        let base_energy = cell_num(regime[0].1, "energy_j")?;
        for (name, (_, data)) in strategies.iter().zip(regime) {
            let detected = cell_num(data, "detected")?;
            let energy = cell_num(data, "energy_j")?;
            out.push_str(&row(
                &[
                    (*name).into(),
                    format!("{detected}"),
                    format!("{:.0}%", 100.0 * detected / base_detected.max(1.0)),
                    fmt3(energy),
                    format!("{:.0}%", 100.0 * energy / base_energy.max(1e-9)),
                ],
                &widths,
            ));
            if let Some(assign) = data.get("first_assignment").and_then(Json::as_arr) {
                let parts: Vec<&str> = assign.iter().filter_map(Json::as_str).collect();
                out.push_str(&format!(
                    "    first-round assignment: {}\n",
                    parts.join(" ")
                ));
            }
        }
    }
    Ok(out)
}
