//! Table V: the 12×12 video-similarity matrix.
//!
//! For every dataset (#1–#3) and camera (#1–#4), features of randomly
//! placed consecutive-frame windows are extracted from the training segment
//! (`T_x.y`) and the test segment (`V_x.y`); similarities are computed with
//! the Grassmann-manifold pipeline of Section III and averaged over
//! repeats (the paper samples 100 frames × 5 repeats; we default to 60 × 3
//! — see EXPERIMENTS.md).
//!
//! Pass `--naive` for the DESIGN.md §5 ablation: plain Euclidean distance
//! between mean feature vectors instead of the geodesic flow kernel.
//!
//! Runs on the sweep engine: `--workers N` fans the twelve matrix rows
//! over a worker pool, a kill resumes from the manifest, and the merged
//! grid lands in `SWEEP_table5.json` (`SWEEP_table5_naive.json` for the
//! ablation).

use eecs_bench::artifacts::Artifacts;
use eecs_bench::scenarios::{self, table5};
use eecs_bench::Scale;

fn main() {
    let naive = std::env::args().any(|a| a == "--naive");
    let artifacts = Artifacts::new(Scale::from_args());
    let shard = table5::shard(&artifacts, naive);
    let stem = if naive {
        "SWEEP_table5_naive"
    } else {
        "SWEEP_table5"
    };
    scenarios::run_bin(&shard, stem, |doc| table5::format(doc, naive)).expect("table5 sweep");
}
