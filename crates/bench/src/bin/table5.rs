//! Table V: the 12×12 video-similarity matrix.
//!
//! For every dataset (#1–#3) and camera (#1–#4), features of randomly
//! placed consecutive-frame windows are extracted from the training segment
//! (`T_x.y`) and the test segment (`V_x.y`); similarities are computed with
//! the Grassmann-manifold pipeline of Section III and averaged over
//! repeats (the paper samples 100 frames × 5 repeats; we default to 60 × 3
//! — see EXPERIMENTS.md).
//!
//! Pass `--naive` for the DESIGN.md §5 ablation: plain Euclidean distance
//! between mean feature vectors instead of the geodesic flow kernel.

use eecs_bench::{experiment_extractor, Scale};
use eecs_core::features::FeatureExtractor;
use eecs_learn::split::sample_windows;
use eecs_manifold::similarity::{video_similarity, SimilarityConfig};
use eecs_manifold::video::VideoItem;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::VideoFeed;

fn main() {
    let scale = Scale::from_args();
    let naive = std::env::args().any(|a| a == "--naive");
    let (window, repeats, stride) = match scale {
        Scale::Paper => (60usize, 3usize, 2usize),
        Scale::Quick => (16, 1, 2),
    };
    let extractor = experiment_extractor(scale, 24);
    let sim_cfg = SimilarityConfig {
        beta: 8,
        scale: 1.0,
    };

    // Extract train and test items per (dataset, camera, repeat).
    let mut names = Vec::new();
    let mut trains: Vec<Vec<VideoItem>> = Vec::new();
    let mut tests: Vec<Vec<VideoItem>> = Vec::new();
    for id in DatasetId::ALL {
        let profile = DatasetProfile::for_id(id);
        let (train_end, test_end) = scale.bounds(&profile);
        for cam in 0..4 {
            let feed = VideoFeed::open(profile.clone(), cam);
            names.push(format!("{}.{}", id.number(), cam + 1));
            trains.push(sample_items(
                &feed,
                &extractor,
                0,
                train_end,
                window,
                repeats,
                stride,
                7 + cam as u64,
            ));
            tests.push(sample_items(
                &feed,
                &extractor,
                train_end,
                test_end,
                window,
                repeats,
                stride,
                1000 + cam as u64,
            ));
            eprintln!("featurized {} (train+test)", names.last().unwrap());
        }
    }

    // Similarity matrix: rows = train items, columns = test items.
    let n = names.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    for (ti, train_set) in trains.iter().enumerate() {
        for (vi, test_set) in tests.iter().enumerate() {
            let mut total = 0.0;
            let mut count = 0usize;
            for (t, v) in train_set.iter().zip(test_set) {
                let s = if naive {
                    naive_similarity(t, v)
                } else {
                    video_similarity(t, v, &sim_cfg).unwrap_or(0.0)
                };
                total += s;
                count += 1;
            }
            matrix[ti][vi] = total / count.max(1) as f64;
        }
    }

    let mode = if naive {
        "naive Euclidean"
    } else {
        "manifold (GFK)"
    };
    println!("== Table V: video similarities, {mode} ==");
    print!("{:>8}", "T\\V");
    for name in &names {
        print!("{name:>7}");
    }
    println!();
    for (ti, name) in names.iter().enumerate() {
        print!("{name:>8}");
        for vi in 0..n {
            print!("{:>7.2}", matrix[ti][vi]);
        }
        println!();
    }

    // The paper's headline property: every test item matches the training
    // item of the same dataset and camera (argmax per column = diagonal).
    let mut correct = 0;
    for vi in 0..n {
        let best = (0..n)
            .max_by(|&a, &b| matrix[a][vi].partial_cmp(&matrix[b][vi]).unwrap())
            .unwrap();
        if best == vi {
            correct += 1;
        } else {
            println!("MISMATCH: V_{} best matched T_{}", names[vi], names[best]);
        }
    }
    println!("\ndiagonal matches: {correct}/{n}");
}

/// Extracts `repeats` video items of `window` frames (stride-subsampled)
/// from random positions in `[start, end)`.
fn sample_items(
    feed: &VideoFeed,
    extractor: &FeatureExtractor,
    start: usize,
    end: usize,
    window: usize,
    repeats: usize,
    stride: usize,
    seed: u64,
) -> Vec<VideoItem> {
    let span = window * stride;
    let starts = sample_windows(start..end, span, repeats, seed).expect("range fits window");
    starts
        .into_iter()
        .enumerate()
        .map(|(r, s)| {
            let frames = feed.frames(s, s + span, stride);
            let images: Vec<_> = frames.into_iter().map(|f| f.image).collect();
            extractor
                .extract_video(format!("{}-r{}", feed.camera_index(), r), &images)
                .expect("feature extraction on simulator frames")
        })
        .collect()
}

/// The ablation comparator: similarity from the Euclidean distance between
/// mean feature vectors (no manifold projection).
fn naive_similarity(t: &VideoItem, v: &VideoItem) -> f64 {
    let mean = |item: &VideoItem| -> Vec<f64> {
        let k = item.num_frames() as f64;
        let mut m = vec![0.0; item.feature_dim()];
        for row in item.features().iter_rows() {
            for (acc, &x) in m.iter_mut().zip(row) {
                *acc += x;
            }
        }
        m.iter().map(|x| x / k).collect()
    };
    let (mt, mv) = (mean(t), mean(v));
    let d2: f64 = mt.iter().zip(&mv).map(|(a, b)| (a - b) * (a - b)).sum();
    (-d2.sqrt()).exp()
}
