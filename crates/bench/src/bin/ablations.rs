//! Ablation studies for the design choices called out in DESIGN.md §5,
//! run on the miniature lab dataset (use `--paper` for the full-scale
//! dataset; slower):
//!
//! 1. re-identification with vs without the Mahalanobis color gate,
//! 2. the f-score/energy downgrade rule vs the any-cheaper rule,
//! 3. Section VII boost rounds on vs off.

use eecs_bench::{fmt3, print_row};
use eecs_core::config::EecsConfig;
use eecs_core::profile::DowngradeRule;
use eecs_core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs_detect::bank::DetectorBank;
use eecs_scene::dataset::{DatasetId, DatasetProfile};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (profile, start, end, cameras, max_train) = if paper_scale {
        (DatasetProfile::lab(), 1000, 3000, 4, 40)
    } else {
        let mut p = DatasetProfile::miniature(DatasetId::Lab);
        p.num_people = 4;
        (p, 40, 100, 2, 8)
    };
    let mut eecs = EecsConfig::default();
    // Looser accuracy floor than the paper's defaults so the subset and
    // downgrade machinery has room to act — ablations need the knobs to
    // actually engage.
    eecs.gamma_n = 0.6;
    eecs.gamma_p = 0.6;
    if !paper_scale {
        eecs.assessment_period = 10;
        eecs.recalibration_interval = 30;
        eecs.key_frames = 8;
    }

    eprintln!("training bank + preparing simulation…");
    let bank = if paper_scale {
        DetectorBank::train_default().expect("bank")
    } else {
        DetectorBank::train_quick(42).expect("bank")
    };
    let base_cfg = SimulationConfig {
        profile,
        cameras,
        start_frame: start,
        end_frame: end,
        budget_j_per_frame: f64::MAX,
        mode: OperatingMode::FullEecs,
        eecs,
        feature_words: 12,
        max_training_frames: max_train,
        boost_every: 0,
        fault_plan: eecs_net::fault::FaultPlan::ideal(),
        sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
        controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
        parallel: eecs_core::simulation::Parallelism::default(),
    };
    let base = Simulation::prepare(bank, base_cfg.clone()).expect("prepare");

    // Budget: between the cheapest and second-cheapest algorithm so the
    // downgrade machinery is active but assessment stays affordable.
    let mut costs: Vec<f64> = base
        .record_for_camera(0)
        .ranked()
        .iter()
        .map(|p| p.energy_per_frame_j)
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Exclude the most expensive algorithm so "best feasible" is not also
    // the only choice.
    let budget = costs[costs.len() - 2] * 1.05;

    println!("== Ablations (budget {} J/frame) ==", fmt3(budget));
    let widths = [34usize, 10, 10, 14];
    print_row(
        &[
            "variant".into(),
            "detected".into(),
            "gt".into(),
            "energy (J)".into(),
        ],
        &widths,
    );

    let run = |label: &str, mutate: &dyn Fn(&mut SimulationConfig)| {
        let mut cfg = base_cfg.clone();
        cfg.budget_j_per_frame = budget;
        mutate(&mut cfg);
        let sim = base
            .with_budget(budget)
            .expect("budget")
            .with_mode(cfg.mode);
        // Config fields beyond mode/budget (boost, rules) require a tweak
        // through a freshly-mutated clone; rebuild only when needed.
        let report = if cfg.boost_every != base_cfg.boost_every
            || cfg.eecs.downgrade_rule != base_cfg.eecs.downgrade_rule
            || cfg.eecs.reid_color_gate != base_cfg.eecs.reid_color_gate
        {
            Simulation::prepare(
                if paper_scale {
                    DetectorBank::train_default().expect("bank")
                } else {
                    DetectorBank::train_quick(42).expect("bank")
                },
                cfg,
            )
            .expect("prepare variant")
            .run()
            .expect("run variant")
        } else {
            sim.run().expect("run")
        };
        print_row(
            &[
                label.into(),
                report.correctly_detected.to_string(),
                report.gt_objects.to_string(),
                fmt3(report.total_energy_j),
            ],
            &widths,
        );
    };

    run("full EECS (defaults)", &|_| {});
    run("downgrade rule: any-cheaper", &|c| {
        c.eecs.downgrade_rule = DowngradeRule::AnyCheaper;
    });
    run("reid: color gate disabled (huge)", &|c| {
        c.eecs.reid_color_gate = 1e12;
    });
    run("boost rounds: every 2nd", &|c| {
        c.boost_every = 2;
    });
    println!(
        "\n(any-cheaper may downgrade into low-efficiency algorithms; a huge color\n\
         gate disables the Mahalanobis verification, risking cross-person merges;\n\
         boost rounds trade energy back for recovery accuracy — Section VII)"
    );
}
