//! CI smoke test for the sweep engine: a tiny (budget × fault-seed) grid
//! on a miniature simulation, exercised three ways —
//!
//! 1. an uninterrupted single-worker reference run,
//! 2. a two-worker run killed (via `stop_after`) after 2 cells,
//! 3. a two-worker resume from the manifest.
//!
//! It then asserts the resumed merge is **byte-identical** to the
//! reference and — via the per-cell `sweep.runs.<cell>` telemetry
//! counters accumulated across kill + resume — that no completed cell
//! ever re-executed. Exits non-zero on any violation.

use eecs_bench::sweep::{run_sweep, JobOrder, Shard, SweepOptions, SweepSpec};
use eecs_core::config::EecsConfig;
use eecs_core::jsonio::Json;
use eecs_core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs_core::telemetry::Telemetry;
use eecs_detect::bank::DetectorBank;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use std::collections::BTreeMap;

fn ensure(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("FAILED: {what}"))
    }
}

fn smoke() -> Result<(), String> {
    eprintln!("[sweep_smoke] preparing miniature simulation…");
    let bank = DetectorBank::train_quick(5).map_err(|e| e.to_string())?;
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 70,
            budget_j_per_frame: 10.0,
            mode: OperatingMode::FullEecs,
            eecs: EecsConfig {
                assessment_period: 10,
                recalibration_interval: 30,
                key_frames: 8,
                ..EecsConfig::default()
            },
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
            sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
            parallel: Parallelism::serial(),
        },
    )
    .map_err(|e| e.to_string())?;

    let spec = || {
        SweepSpec::new("smoke")
            .axis("budget", ["8.0", "12.0"])
            .axis("fault_seed", ["1", "2"])
    };
    let shard = Shard::new(spec(), |job| {
        let budget: f64 = job.value("budget").unwrap().parse().unwrap();
        let seed: u64 = job.value("fault_seed").unwrap().parse().unwrap();
        let report = base
            .with_budget(budget)
            .map_err(|e| e.to_string())?
            .with_faults(
                eecs_net::fault::FaultPlan::seeded(seed),
                eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
                eecs_net::fault::ControllerFaultPlan::none(),
            )
            .run()
            .map_err(|e| e.to_string())?;
        Ok(Json::Obj(vec![
            (
                "detected".into(),
                Json::Num(report.correctly_detected as f64),
            ),
            ("energy_j".into(), Json::Num(report.total_energy_j)),
        ]))
    });

    eprintln!("[sweep_smoke] reference run (1 worker, no manifest)…");
    let reference = run_sweep(
        &shard,
        &SweepOptions {
            workers: 1,
            ..Default::default()
        },
    )?
    .merged
    .ok_or("reference sweep incomplete")?;

    let manifest =
        std::env::temp_dir().join(format!("eecs_sweep_smoke_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&manifest);
    let telemetry = Telemetry::recording(256);

    eprintln!("[sweep_smoke] killed run (2 workers, stop after 2 cells)…");
    let killed = run_sweep(
        &shard,
        &SweepOptions {
            workers: 2,
            manifest_path: Some(manifest.clone()),
            order: JobOrder::Shuffled(17),
            stop_after: Some(2),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    )?;
    ensure(killed.merged.is_none(), "killed run must not merge")?;
    ensure(killed.executed == 2, "killed run executes exactly 2 cells")?;

    eprintln!("[sweep_smoke] resumed run (2 workers, same manifest)…");
    let resumed = run_sweep(
        &shard,
        &SweepOptions {
            workers: 2,
            manifest_path: Some(manifest.clone()),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    )?;
    let _ = std::fs::remove_file(&manifest);
    ensure(
        resumed.skipped == 2,
        "resume skips the 2 manifest-complete cells",
    )?;
    let merged = resumed.merged.ok_or("resumed sweep incomplete")?;
    ensure(
        merged.as_bytes() == reference.as_bytes(),
        "kill/resume merge is byte-identical to the uninterrupted run",
    )?;

    // Across kill + resume (one shared telemetry handle), every cell ran
    // exactly once.
    let counters: BTreeMap<String, u64> = telemetry
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    for job in spec().jobs() {
        let key = format!("sweep.runs.{}", job.cell_id());
        ensure(
            counters.get(&key) == Some(&1),
            &format!("{key} == 1 (no completed cell re-executes)"),
        )?;
    }
    ensure(
        counters.get("sweep.executed") == Some(&4),
        "4 cells executed in total across kill + resume",
    )?;
    ensure(
        counters.get("sweep.skipped") == Some(&2),
        "2 cells skipped in total across kill + resume",
    )?;
    Ok(())
}

fn main() {
    match smoke() {
        Ok(()) => println!("sweep_smoke: OK"),
        Err(e) => {
            eprintln!("sweep_smoke: {e}");
            std::process::exit(1);
        }
    }
}
