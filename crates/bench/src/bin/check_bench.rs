//! CI gate for the benchmark trajectory.
//!
//! Always: verifies that `BENCH_pipeline.json` exists at the repository
//! root and is a well-formed pipeline report, then prints its contents.
//!
//! `--baseline <path>` additionally regresses the current report against a
//! previously recorded one. The comparison runs on the per-kernel
//! optimized-vs-reference *ratios* (`kernel_speedup_*`), never absolute
//! entry times: both sides of a ratio come from one run on one host, so
//! the ratio survives host and iteration-count changes that make raw ns
//! incomparable (CI smokes with `EECS_BENCH_ITERS=1` against a committed
//! multi-iteration baseline). A kernel fails when its speedup drops below
//! `baseline × (1 − tolerance)` (`--tolerance`, default 0.25).
//!
//! The parallel speedups are gated by recorded host width: on a 1-core
//! host `round_speedup`/`sweep_speedup` legitimately collapse to ~1× and
//! only warn; a multi-core host that shows no parallel speedup fails.
//!
//! Exits non-zero on any problem so `ci.sh` fails loudly.

use eecs_bench::report::{validate_pipeline_report, PipelineSummary};
use std::process::ExitCode;

/// Repo-root path of the machine-readable report.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");

/// Default allowed relative drop of a kernel speedup vs the baseline.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// Sweep speedup a multi-core host must reach (4 workers over ≥2 cores).
const MULTICORE_SWEEP_FLOOR: f64 = 1.2;
/// Round speedup a multi-core host must reach (parallel detectors plus
/// the shared feature cache must at least break even).
const MULTICORE_ROUND_FLOOR: f64 = 1.0;

struct Args {
    baseline: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?);
            }
            "--tolerance" => {
                let raw = it.next().ok_or("--tolerance needs a value")?;
                let t: f64 = raw
                    .parse()
                    .map_err(|_| format!("--tolerance {raw:?} is not a number"))?;
                if !(0.0..1.0).contains(&t) {
                    return Err(format!("--tolerance {t} outside [0, 1)"));
                }
                args.tolerance = t;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<PipelineSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_pipeline_report(&text).map_err(|e| format!("{path} is invalid: {e}"))
}

/// Parallel-speedup gate: warn-only on a single core, hard floors beyond.
fn check_parallel_speedups(summary: &PipelineSummary) -> Result<(), String> {
    let host = summary.host_parallelism.unwrap_or(1.0);
    if host < 2.0 {
        if summary.sweep_speedup < MULTICORE_SWEEP_FLOOR {
            println!(
                "  note: sweep speedup {:.2}x on a {host:.0}-core host (expected; \
                 would fail on multi-core)",
                summary.sweep_speedup
            );
        }
        return Ok(());
    }
    if summary.sweep_speedup < MULTICORE_SWEEP_FLOOR {
        return Err(format!(
            "sweep_speedup {:.2}x on a {host:.0}-core host (floor {MULTICORE_SWEEP_FLOOR}x): \
             the sweep engine is not parallelizing",
            summary.sweep_speedup
        ));
    }
    if summary.round_speedup < MULTICORE_ROUND_FLOOR {
        return Err(format!(
            "round_speedup {:.2}x on a {host:.0}-core host (floor {MULTICORE_ROUND_FLOOR}x): \
             the parallel round is slower than serial",
            summary.round_speedup
        ));
    }
    Ok(())
}

/// Kernel-regression gate against a baseline report.
fn check_against_baseline(
    summary: &PipelineSummary,
    baseline: &PipelineSummary,
    tolerance: f64,
) -> Result<(), String> {
    if summary.kernel_speedups.is_empty() {
        return Err("current report has no kernel_speedup_* metrics".into());
    }
    for (kernel, base) in &baseline.kernel_speedups {
        let Some((_, current)) = summary.kernel_speedups.iter().find(|(k, _)| k == kernel) else {
            return Err(format!(
                "kernel_speedup_{kernel} present in baseline but missing from current report"
            ));
        };
        let floor = base * (1.0 - tolerance);
        if *current < floor {
            return Err(format!(
                "kernel_speedup_{kernel} regressed: {current:.2}x vs baseline {base:.2}x \
                 (floor {floor:.2}x at tolerance {tolerance})"
            ));
        }
        println!(
            "  kernel {kernel:<6} {current:>6.2}x (baseline {base:.2}x, floor {floor:.2}x) ok"
        );
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let summary = load(REPORT_PATH).map_err(|e| {
        format!("{e}\nrun `cargo bench -p eecs-bench --bench pipeline` to generate it")
    })?;
    println!("BENCH_pipeline.json: {} entries", summary.entries.len());
    for e in &summary.entries {
        println!("  {:<45} {:>12} ns", e.name, e.mean_ns);
    }
    println!(
        "  round speedup (serial/parallel): {:.2}x",
        summary.round_speedup
    );
    println!(
        "  sweep speedup (1 worker / 4 workers): {:.2}x",
        summary.sweep_speedup
    );
    for (kernel, speedup) in &summary.kernel_speedups {
        println!("  kernel speedup {kernel}: {speedup:.2}x");
    }
    if let Some(ns) = summary.churn_replan_ns {
        println!("  churn replan bookkeeping: {ns:.0} ns");
    }
    if let Some(x) = summary.serve_speedup {
        println!("  serve speedup (1 worker / 4 workers): {x:.2}x");
    }
    check_parallel_speedups(&summary)?;
    if let Some(path) = &args.baseline {
        let baseline = load(path)?;
        check_against_baseline(&summary, &baseline, args.tolerance)?;
        println!("baseline check ok ({path}, tolerance {})", args.tolerance);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
