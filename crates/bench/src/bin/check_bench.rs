//! CI smoke-check for the benchmark trajectory: verifies that
//! `BENCH_pipeline.json` exists at the repository root and is a
//! well-formed pipeline report, then prints its contents.
//!
//! Exits non-zero on any problem so `ci.sh` fails loudly.

use eecs_bench::report::validate_pipeline_report;
use std::process::ExitCode;

/// Repo-root path of the machine-readable report.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");

fn main() -> ExitCode {
    let text = match std::fs::read_to_string(REPORT_PATH) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("check_bench: cannot read {REPORT_PATH}: {e}");
            eprintln!("run `cargo bench -p eecs-bench --bench pipeline` to generate it");
            return ExitCode::FAILURE;
        }
    };
    match validate_pipeline_report(&text) {
        Ok(summary) => {
            println!("BENCH_pipeline.json: {} entries", summary.entries.len());
            for e in &summary.entries {
                println!("  {:<45} {:>12} ns", e.name, e.mean_ns);
            }
            println!(
                "  round speedup (serial/parallel): {:.2}x",
                summary.round_speedup
            );
            println!(
                "  sweep speedup (1 worker / 4 workers): {:.2}x",
                summary.sweep_speedup
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_bench: {REPORT_PATH} is invalid: {e}");
            ExitCode::FAILURE
        }
    }
}
