//! Developer probe: wall-clock and op costs of each detector per dataset.

use eecs_bench::experiment_bank;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::VideoFeed;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let bank = experiment_bank();
    println!("bank training: {:.1?}", t0.elapsed());

    for id in [DatasetId::Lab, DatasetId::Chap] {
        let profile = DatasetProfile::for_id(id);
        let feed = VideoFeed::open(profile, 0);
        let t0 = Instant::now();
        let frame = feed.frame(0);
        println!("{id}: render {:.1?}", t0.elapsed());
        for (alg, det) in bank.all() {
            let t0 = Instant::now();
            let out = det.detect(&frame.image);
            println!(
                "  {alg}: {:>10} ops, {} detections, {:.1?}",
                out.ops,
                out.detections.len(),
                t0.elapsed()
            );
        }
    }
}
