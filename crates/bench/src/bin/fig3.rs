//! Fig. 3: the benefit of adaptively choosing detection algorithms.
//!
//! The paper's experiment: if the environment changes from dataset #1 to
//! dataset #2 but the system keeps using one fixed algorithm, the best it
//! can do (HOG everywhere) is f ≈ 0.70; adaptively choosing the best
//! algorithm per dataset (HOG on #1, ACF on #2) reaches f ≈ 0.81 — and
//! crucially improves precision and recall *simultaneously*.
//!
//! We evaluate camera #1's test segments of both datasets with thresholds
//! learned on the corresponding training segments, and also show which
//! algorithm the manifold matcher actually selects for each test feed.

use eecs_bench::{experiment_bank, experiment_config, fmt3, print_row, Scale};
use eecs_core::training::profile_algorithm;
use eecs_detect::detection::{AlgorithmId, Detection};
use eecs_detect::eval::{evaluate_frame, EvalCounts};
use eecs_scene::dataset::DatasetProfile;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_args();
    let bank = experiment_bank();
    let config = experiment_config(&bank);
    let datasets = [DatasetProfile::lab(), DatasetProfile::chap()];

    // Learn thresholds per (dataset, algorithm) on the training segments,
    // then measure counts on the test segments.
    let mut per_dataset: Vec<BTreeMap<AlgorithmId, EvalCounts>> = Vec::new();
    for profile in &datasets {
        let train = eecs_bench::training_frames(profile, 0, scale);
        let test = eecs_bench::test_frames(profile, 0, scale);
        let mut counts_by_alg = BTreeMap::new();
        for (alg, det) in bank.all() {
            let p = profile_algorithm(alg, det, &train, &config);
            let mut counts = EvalCounts::default();
            for frame in &test {
                let out = det.detect(&frame.image);
                let kept: Vec<&Detection> = out.above(p.threshold);
                counts.accumulate(evaluate_frame(&kept, &frame.gt, &config.eval));
            }
            counts_by_alg.insert(alg, counts);
        }
        per_dataset.push(counts_by_alg);
        eprintln!("evaluated dataset #{}", profile.id.number());
    }

    println!("== Fig. 3: fixed algorithm vs adaptive choice (datasets #1 + #2, camera #1) ==");
    let widths = [14usize, 9, 9, 9, 9, 9, 9];
    print_row(
        &[
            "strategy".into(),
            "f(D1)".into(),
            "f(D2)".into(),
            "mean f".into(),
            "recall".into(),
            "precision".into(),
            "f(pooled)".into(),
        ],
        &widths,
    );

    let mut best_fixed: Option<(AlgorithmId, f64)> = None;
    for alg in AlgorithmId::ALL {
        let f1 = per_dataset[0][&alg].f_score();
        let f2 = per_dataset[1][&alg].f_score();
        let mean = (f1 + f2) / 2.0;
        let pooled = pool(&[per_dataset[0][&alg], per_dataset[1][&alg]]);
        print_row(
            &[
                format!("fixed {alg}"),
                fmt3(f1),
                fmt3(f2),
                fmt3(mean),
                fmt3(pooled.recall()),
                fmt3(pooled.precision()),
                fmt3(pooled.f_score()),
            ],
            &widths,
        );
        if best_fixed.map(|(_, b)| mean > b).unwrap_or(true) {
            best_fixed = Some((alg, mean));
        }
    }

    // Adaptive: per dataset, the algorithm with the best f-score.
    let pick = |i: usize| -> (AlgorithmId, EvalCounts) {
        per_dataset[i]
            .iter()
            .max_by(|a, b| a.1.f_score().partial_cmp(&b.1.f_score()).unwrap())
            .map(|(&a, &c)| (a, c))
            .expect("four algorithms evaluated")
    };
    let (a1, c1) = pick(0);
    let (a2, c2) = pick(1);
    let pooled = pool(&[c1, c2]);
    print_row(
        &[
            format!("adaptive {a1}/{a2}"),
            fmt3(c1.f_score()),
            fmt3(c2.f_score()),
            fmt3((c1.f_score() + c2.f_score()) / 2.0),
            fmt3(pooled.recall()),
            fmt3(pooled.precision()),
            fmt3(pooled.f_score()),
        ],
        &widths,
    );

    let (bf_alg, bf) = best_fixed.expect("at least one algorithm");
    let adaptive_mean = (c1.f_score() + c2.f_score()) / 2.0;
    println!(
        "\nbest fixed: {bf_alg} (mean f {}), adaptive: {} — gain {:+.3}",
        fmt3(bf),
        fmt3(adaptive_mean),
        adaptive_mean - bf
    );
}

fn pool(counts: &[EvalCounts]) -> EvalCounts {
    let mut total = EvalCounts::default();
    for &c in counts {
        total.accumulate(c);
    }
    total
}
