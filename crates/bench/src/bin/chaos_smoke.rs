//! Fault-matrix smoke: one miniature EECS mission run under combined
//! sensor + network + controller chaos, once per seed given on the
//! command line (default: 1 2 3).
//!
//! ```bash
//! cargo run --release -p eecs-bench --bin chaos_smoke -- 1 2 3
//! ```
//!
//! For every seed the run must complete, keep energy physical, record the
//! scheduled controller failover, and replay bit-for-bit; any violation
//! exits non-zero. This is the CI gate that keeps the self-healing
//! runtime honest without paying for a full test suite.

use eecs_core::config::EecsConfig;
use eecs_core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs_detect::bank::DetectorBank;
use eecs_net::fault::{ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round the controller dies at (the miniature run has two rounds).
const CRASH_ROUND: usize = 1;

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| a.parse().unwrap_or_else(|_| panic!("bad seed {a:?}")))
            .collect();
        if args.is_empty() {
            vec![1, 2, 3]
        } else {
            args
        }
    };

    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    let base = Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare");
    eprintln!("prepared miniature mission; fault matrix over seeds {seeds:?}");

    for &seed in &seeds {
        let sim = base.with_faults(
            FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.2)),
            SensorFaultPlan::seeded(seed)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(1, 40, 100, 0.25),
            ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
        );
        let report = sim.run().expect("chaos run completes");
        let replay = sim.run().expect("chaos replay completes");
        assert_eq!(report, replay, "seed {seed}: run is not deterministic");

        assert!(!report.rounds.is_empty(), "seed {seed}: no rounds");
        assert!(
            report.rounds.iter().all(|r| !r.active.is_empty()),
            "seed {seed}: a round lost every camera"
        );
        assert!(
            report.total_energy_j.is_finite() && report.total_energy_j > 0.0,
            "seed {seed}: unphysical total energy {}",
            report.total_energy_j
        );
        assert!(
            report
                .per_camera_energy
                .iter()
                .all(|e| e.is_finite() && *e >= 0.0),
            "seed {seed}: negative per-camera energy {:?}",
            report.per_camera_energy
        );
        assert!(
            report.degraded_frames > 0,
            "seed {seed}: sensor plan never fired"
        );
        assert_eq!(
            report.failovers.len(),
            1,
            "seed {seed}: expected exactly one failover, got {:?}",
            report.failovers
        );
        let f = &report.failovers[0];
        assert_eq!(f.round, CRASH_ROUND, "seed {seed}: failover in wrong round");
        println!(
            "seed {seed}: OK — found {}/{}, {:.2} J, degraded {} dropped {}, \
             failover → camera {} (checkpoint round {}, {} acks)",
            report.correctly_detected,
            report.gt_objects,
            report.total_energy_j,
            report.degraded_frames,
            report.dropped_frames,
            f.elected,
            f.checkpoint_round,
            f.announced,
        );
    }
    println!("chaos smoke OK ({} seeds)", seeds.len());
}
