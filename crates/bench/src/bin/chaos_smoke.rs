//! Fault-matrix smoke: one miniature EECS mission run under combined
//! sensor + network + controller chaos, once per seed given on the
//! command line (default: 1 2 3).
//!
//! ```bash
//! cargo run --release -p eecs-bench --bin chaos_smoke -- 1 2 3
//! cargo run --release -p eecs-bench --bin chaos_smoke -- --telemetry 7
//! cargo run --release -p eecs-bench --bin chaos_smoke -- --partition 1 2 3
//! cargo run --release -p eecs-bench --bin chaos_smoke -- --corruption 1 2 3
//! ```
//!
//! For every seed the run must complete, keep energy physical, record the
//! scheduled controller failover, and replay bit-for-bit; any violation
//! prints the flight-recorder tail around the failure — always including
//! the failover round itself — and exits non-zero. With `--telemetry`
//! each passing seed also prints the full summary table and the metrics
//! registry. This is the CI gate that keeps the self-healing runtime
//! honest without paying for a full test suite.
//!
//! `--partition` swaps the controller-crash matrix for a partition
//! matrix: per seed, a clean two-island split and a flapping split each
//! run on top of lossy links, and must elect, heal, reconcile, and
//! replay bit-for-bit.
//!
//! `--corruption` swaps in the integrity matrix: per seed, a bit-flip
//! corruption storm on every wire path plus a torn checkpoint write
//! under a controller crash. The run must reject corrupted frames (never
//! consume them), charge energy for the wasted attempts, roll the
//! restore back one checkpoint generation, and replay bit-for-bit.
//!
//! `--churn` swaps in the elastic-fleet matrix: per seed, a
//! heterogeneous fleet (flagship/midrange/lowend device profiles) runs
//! under lossy links, a scheduled controller crash, and a churn plan
//! that takes one camera out mid-mission and brings it back. The run
//! must fail over on schedule, re-plan around the departure (the absent
//! camera never appears in a round's plan), see it rejoin, and replay
//! bit-for-bit.

use eecs_core::checkpoint::CheckpointFaultPlan;
use eecs_core::config::EecsConfig;
use eecs_core::simulation::{
    OperatingMode, Parallelism, Simulation, SimulationConfig, SimulationReport,
};
use eecs_core::telemetry::summary::render_summary;
use eecs_core::telemetry::Telemetry;
use eecs_detect::bank::DetectorBank;
use eecs_energy::profile::DeviceProfile;
use eecs_net::fault::{
    ChurnPlan, ControllerFaultPlan, CorruptionPlan, Endpoint, FaultPlan, LinkFaults, PartitionPlan,
};
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round the controller dies at (the miniature run has two rounds).
const CRASH_ROUND: usize = 1;

/// Rounds of trace dumped on a failed check. `tail_rounds` is inclusive
/// of the newest round, so two rounds always cover both the failover
/// round and the final round of the miniature mission.
const POSTMORTEM_ROUNDS: usize = 2;

fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// All invariants a chaos run must satisfy. Returns the human-readable
/// violation instead of panicking so the caller can attach the
/// flight-recorder post-mortem before exiting.
fn check_report(seed: u64, report: &SimulationReport) -> Result<(), String> {
    ensure(!report.rounds.is_empty(), || {
        format!("seed {seed}: no rounds")
    })?;
    ensure(report.rounds.iter().all(|r| !r.active.is_empty()), || {
        format!("seed {seed}: a round lost every camera")
    })?;
    ensure(
        report.total_energy_j.is_finite() && report.total_energy_j > 0.0,
        || {
            format!(
                "seed {seed}: unphysical total energy {}",
                report.total_energy_j
            )
        },
    )?;
    ensure(
        report
            .per_camera_energy
            .iter()
            .all(|e| e.is_finite() && *e >= 0.0),
        || {
            format!(
                "seed {seed}: negative per-camera energy {:?}",
                report.per_camera_energy
            )
        },
    )?;
    ensure(report.degraded_frames > 0, || {
        format!("seed {seed}: sensor plan never fired")
    })?;
    ensure(report.failovers.len() == 1, || {
        format!(
            "seed {seed}: expected exactly one failover, got {:?}",
            report.failovers
        )
    })?;
    ensure(report.failovers[0].round == CRASH_ROUND, || {
        format!("seed {seed}: failover in wrong round")
    })?;
    Ok(())
}

/// Runs one seed of the fault matrix; `Err` carries the violation text.
fn check_seed(
    base: &Simulation,
    seed: u64,
    tel: &Telemetry,
    show_telemetry: bool,
) -> Result<(), String> {
    let sim = base.with_faults(
        FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.2)),
        SensorFaultPlan::seeded(seed)
            .with_default_impairments(SensorImpairments::harsh())
            .with_occlusion(1, 40, 100, 0.25),
        ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
    );
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .map_err(|e| format!("seed {seed}: chaos run failed: {e}"))?;
    // The replay records into its own handle so the caller's stream stays
    // a single run — and the two streams must match byte-for-byte.
    let replay_tel = Telemetry::recording(8192);
    let replay = sim
        .with_telemetry(replay_tel.clone())
        .run()
        .map_err(|e| format!("seed {seed}: chaos replay failed: {e}"))?;
    ensure(report == replay, || {
        format!("seed {seed}: run is not deterministic")
    })?;
    ensure(
        tel.trace_json().ok() == replay_tel.trace_json().ok()
            && tel.metrics_json().ok() == replay_tel.metrics_json().ok(),
        || format!("seed {seed}: telemetry stream is not deterministic"),
    )?;
    check_report(seed, &report)?;

    let f = &report.failovers[0];
    println!(
        "seed {seed}: OK — found {}/{}, {:.2} J, degraded {} dropped {}, \
         failover → camera {} (checkpoint round {}, {} acks)",
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
        report.degraded_frames,
        report.dropped_frames,
        f.elected,
        f.checkpoint_round,
        f.announced,
    );
    if show_telemetry {
        println!("{}", render_summary(&report, tel));
        println!(
            "metrics: {}",
            tel.metrics_json()
                .map_err(|e| format!("seed {seed}: metrics dump failed: {e}"))?
        );
    }
    Ok(())
}

/// The two network islands of the partition matrix: the hub keeps
/// cameras 0 and 1, cameras 2 and 3 go dark together.
fn two_islands() -> Vec<Vec<Endpoint>> {
    vec![
        vec![Endpoint::Hub, Endpoint::Camera(0), Endpoint::Camera(1)],
        vec![Endpoint::Camera(2), Endpoint::Camera(3)],
    ]
}

/// Invariants a partitioned run must satisfy: the mission never stops,
/// energy stays physical, the orphaned island elects, the heal
/// reconciles, and no crash failover is ever recorded.
fn check_partition_report(
    seed: u64,
    scenario: &str,
    report: &SimulationReport,
) -> Result<(), String> {
    ensure(!report.rounds.is_empty(), || {
        format!("seed {seed} [{scenario}]: no rounds")
    })?;
    ensure(report.rounds.iter().all(|r| !r.active.is_empty()), || {
        format!("seed {seed} [{scenario}]: a round lost every camera")
    })?;
    ensure(
        report.total_energy_j.is_finite() && report.total_energy_j > 0.0,
        || {
            format!(
                "seed {seed} [{scenario}]: unphysical total energy {}",
                report.total_energy_j
            )
        },
    )?;
    ensure(report.partitions >= 1, || {
        format!("seed {seed} [{scenario}]: partition plan never fired")
    })?;
    ensure(report.elections >= 1, || {
        format!("seed {seed} [{scenario}]: no island ever elected an acting seat")
    })?;
    ensure(report.reconciliations >= 1, || {
        format!("seed {seed} [{scenario}]: no heal ever reconciled")
    })?;
    ensure(report.split_brain_rounds >= 1, || {
        format!("seed {seed} [{scenario}]: no split-brain round recorded")
    })?;
    ensure(report.failovers.is_empty(), || {
        format!(
            "seed {seed} [{scenario}]: island election leaked a crash failover {:?}",
            report.failovers
        )
    })?;
    Ok(())
}

/// Runs the partition matrix for one seed: a clean split and a flapping
/// split, each over lossy links, each replayed bit-for-bit. On violation
/// the flight-recorder tail is folded into the error text.
fn check_partition_seed(base: &Simulation, seed: u64, show_telemetry: bool) -> Result<(), String> {
    let scenarios: [(&str, PartitionPlan); 2] = [
        (
            "split",
            PartitionPlan::none().with_split(two_islands(), 1, 3),
        ),
        (
            "flapping",
            PartitionPlan::none().with_flapping(two_islands(), 1, 4, 1),
        ),
    ];
    for (scenario, plan) in scenarios {
        let tel = Telemetry::recording(8192);
        if let Err(violation) =
            check_partition_scenario(base, seed, scenario, plan, &tel, show_telemetry)
        {
            let tail = tel
                .tail_json(POSTMORTEM_ROUNDS)
                .unwrap_or_else(|e| format!("(tail dump failed: {e})"));
            return Err(format!(
                "{violation}\nflight recorder, last {POSTMORTEM_ROUNDS} rounds:\n{tail}"
            ));
        }
    }
    Ok(())
}

fn check_partition_scenario(
    base: &Simulation,
    seed: u64,
    scenario: &str,
    plan: PartitionPlan,
    tel: &Telemetry,
    show_telemetry: bool,
) -> Result<(), String> {
    let sim = base.with_faults(
        FaultPlan::seeded(seed)
            .with_default_faults(LinkFaults::lossy(0.2))
            .with_partition(plan),
        SensorFaultPlan::ideal(),
        ControllerFaultPlan::none(),
    );
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [{scenario}]: partition run failed: {e}"))?;
    let replay_tel = Telemetry::recording(8192);
    let replay = sim
        .with_telemetry(replay_tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [{scenario}]: partition replay failed: {e}"))?;
    ensure(report == replay, || {
        format!("seed {seed} [{scenario}]: run is not deterministic")
    })?;
    ensure(
        tel.trace_json().ok() == replay_tel.trace_json().ok()
            && tel.metrics_json().ok() == replay_tel.metrics_json().ok(),
        || format!("seed {seed} [{scenario}]: telemetry stream is not deterministic"),
    )?;
    check_partition_report(seed, scenario, &report)?;

    println!(
        "seed {seed} [{scenario}]: OK — found {}/{}, {:.2} J, partitions {} \
         elections {} reconciliations {} split-brain rounds {}",
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
        report.partitions,
        report.elections,
        report.reconciliations,
        report.split_brain_rounds,
    );
    if show_telemetry {
        println!("{}", render_summary(&report, tel));
        println!(
            "metrics: {}",
            tel.metrics_json()
                .map_err(|e| format!("seed {seed} [{scenario}]: metrics dump failed: {e}"))?
        );
    }
    Ok(())
}

/// Invariants an integrity run must satisfy: corrupted frames were
/// detected (and therefore never consumed), the torn checkpoint rolled
/// the restore back exactly one generation, and the crash failover still
/// happened on schedule.
fn check_corruption_report(seed: u64, report: &SimulationReport) -> Result<(), String> {
    ensure(!report.rounds.is_empty(), || {
        format!("seed {seed} [integrity]: no rounds")
    })?;
    ensure(report.rounds.iter().all(|r| !r.active.is_empty()), || {
        format!("seed {seed} [integrity]: a round lost every camera")
    })?;
    ensure(
        report.total_energy_j.is_finite() && report.total_energy_j > 0.0,
        || {
            format!(
                "seed {seed} [integrity]: unphysical total energy {}",
                report.total_energy_j
            )
        },
    )?;
    ensure(report.corrupted_frames > 0, || {
        format!("seed {seed} [integrity]: corruption plan never fired")
    })?;
    ensure(report.failovers.len() == 1, || {
        format!(
            "seed {seed} [integrity]: expected exactly one failover, got {:?}",
            report.failovers
        )
    })?;
    ensure(report.failovers[0].round == CRASH_ROUND, || {
        format!("seed {seed} [integrity]: failover in wrong round")
    })?;
    ensure(report.checkpoint_rollbacks == 1, || {
        format!(
            "seed {seed} [integrity]: torn newest generation should roll back \
             exactly once, got {}",
            report.checkpoint_rollbacks
        )
    })?;
    Ok(())
}

/// Runs the integrity matrix for one seed: a wire corruption storm over
/// lossy links plus a torn write of the newest checkpoint generation,
/// under the scheduled controller crash. The run must complete, detect
/// (never consume) the corrupted frames, recover from the torn
/// checkpoint by falling back one generation, and replay bit-for-bit.
fn check_corruption_seed(base: &Simulation, seed: u64, show_telemetry: bool) -> Result<(), String> {
    let tel = Telemetry::recording(8192);
    if let Err(violation) = check_corruption_scenario(base, seed, &tel, show_telemetry) {
        let tail = tel
            .tail_json(POSTMORTEM_ROUNDS)
            .unwrap_or_else(|e| format!("(tail dump failed: {e})"));
        return Err(format!(
            "{violation}\nflight recorder, last {POSTMORTEM_ROUNDS} rounds:\n{tail}"
        ));
    }
    Ok(())
}

fn check_corruption_scenario(
    base: &Simulation,
    seed: u64,
    tel: &Telemetry,
    show_telemetry: bool,
) -> Result<(), String> {
    // Generation 1 is the initial checkpoint; the round-0 snapshot lands
    // as generation 2 and gets torn, so the crash restore must fall back
    // exactly one generation.
    let sim = base
        .with_faults(
            FaultPlan::seeded(seed)
                .with_default_faults(LinkFaults::lossy(0.1))
                .with_corruption(CorruptionPlan::with_rate(0.25)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
        )
        .with_checkpoint_faults(CheckpointFaultPlan::seeded(seed).with_torn_write(2));
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [integrity]: corruption run failed: {e}"))?;
    let replay_tel = Telemetry::recording(8192);
    let replay = sim
        .with_telemetry(replay_tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [integrity]: corruption replay failed: {e}"))?;
    ensure(report == replay, || {
        format!("seed {seed} [integrity]: run is not deterministic")
    })?;
    ensure(
        tel.trace_json().ok() == replay_tel.trace_json().ok()
            && tel.metrics_json().ok() == replay_tel.metrics_json().ok(),
        || format!("seed {seed} [integrity]: telemetry stream is not deterministic"),
    )?;
    check_corruption_report(seed, &report)?;

    let f = &report.failovers[0];
    println!(
        "seed {seed} [integrity]: OK — found {}/{}, {:.2} J, corrupted frames {} \
         rejected, rollbacks {}, failover → camera {} (checkpoint round {})",
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
        report.corrupted_frames,
        report.checkpoint_rollbacks,
        f.elected,
        f.checkpoint_round,
    );
    if show_telemetry {
        println!("{}", render_summary(&report, tel));
        println!(
            "metrics: {}",
            tel.metrics_json()
                .map_err(|e| format!("seed {seed} [integrity]: metrics dump failed: {e}"))?
        );
    }
    Ok(())
}

/// The camera the churn matrix removes over rounds `[1, 3)`.
const CHURN_CAMERA: usize = 3;

/// Invariants an elastic-fleet run must satisfy: the crash failover
/// still happens on schedule, the churn plan actually fired in both
/// directions, the absent camera never leaks into a round's plan, and
/// no round is ever planned empty.
fn check_churn_report(seed: u64, report: &SimulationReport) -> Result<(), String> {
    ensure(!report.rounds.is_empty(), || {
        format!("seed {seed} [churn]: no rounds")
    })?;
    ensure(report.rounds.iter().all(|r| !r.active.is_empty()), || {
        format!("seed {seed} [churn]: a round lost every camera")
    })?;
    ensure(
        report.total_energy_j.is_finite() && report.total_energy_j > 0.0,
        || {
            format!(
                "seed {seed} [churn]: unphysical total energy {}",
                report.total_energy_j
            )
        },
    )?;
    ensure(report.failovers.len() == 1, || {
        format!(
            "seed {seed} [churn]: expected exactly one failover, got {:?}",
            report.failovers
        )
    })?;
    ensure(report.failovers[0].round == CRASH_ROUND, || {
        format!("seed {seed} [churn]: failover in wrong round")
    })?;
    ensure(report.camera_leaves >= 1, || {
        format!("seed {seed} [churn]: churn plan never removed a camera")
    })?;
    ensure(report.camera_joins >= 1, || {
        format!("seed {seed} [churn]: the absent camera never rejoined")
    })?;
    // Re-planning around the departure: at least one round ran without
    // the churned camera in either the active set or the assignment.
    ensure(
        report.rounds.iter().any(|r| {
            !r.active.contains(&CHURN_CAMERA) && !r.assignment.contains_key(&CHURN_CAMERA)
        }),
        || {
            format!(
                "seed {seed} [churn]: camera {CHURN_CAMERA} never left the plan — \
                 sticky assignments leaked across the departure"
            )
        },
    )?;
    Ok(())
}

/// Runs the elastic-fleet matrix for one seed over a heterogeneous
/// device fleet. On violation the flight-recorder tail is folded into
/// the error text.
fn check_churn_seed(base: &Simulation, seed: u64, show_telemetry: bool) -> Result<(), String> {
    let tel = Telemetry::recording(8192);
    if let Err(violation) = check_churn_scenario(base, seed, &tel, show_telemetry) {
        let tail = tel
            .tail_json(POSTMORTEM_ROUNDS)
            .unwrap_or_else(|e| format!("(tail dump failed: {e})"));
        return Err(format!(
            "{violation}\nflight recorder, last {POSTMORTEM_ROUNDS} rounds:\n{tail}"
        ));
    }
    Ok(())
}

fn check_churn_scenario(
    base: &Simulation,
    seed: u64,
    tel: &Telemetry,
    show_telemetry: bool,
) -> Result<(), String> {
    let sim = base
        .with_fleet(vec![
            DeviceProfile::flagship(),
            DeviceProfile::midrange(),
            DeviceProfile::midrange(),
            DeviceProfile::lowend(),
        ])
        .map_err(|e| format!("seed {seed} [churn]: fleet rejected: {e}"))?
        .with_faults(
            FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.2)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
        )
        .with_churn(ChurnPlan::seeded(seed).with_leave(CHURN_CAMERA, 1, 3));
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [churn]: churn run failed: {e}"))?;
    let replay_tel = Telemetry::recording(8192);
    let replay = sim
        .with_telemetry(replay_tel.clone())
        .run()
        .map_err(|e| format!("seed {seed} [churn]: churn replay failed: {e}"))?;
    ensure(report == replay, || {
        format!("seed {seed} [churn]: run is not deterministic")
    })?;
    ensure(
        tel.trace_json().ok() == replay_tel.trace_json().ok()
            && tel.metrics_json().ok() == replay_tel.metrics_json().ok(),
        || format!("seed {seed} [churn]: telemetry stream is not deterministic"),
    )?;
    check_churn_report(seed, &report)?;

    let f = &report.failovers[0];
    println!(
        "seed {seed} [churn]: OK — found {}/{}, {:.2} J, leaves {} joins {}, \
         failover → camera {} (checkpoint round {})",
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
        report.camera_leaves,
        report.camera_joins,
        f.elected,
        f.checkpoint_round,
    );
    if show_telemetry {
        println!("{}", render_summary(&report, tel));
        println!(
            "metrics: {}",
            tel.metrics_json()
                .map_err(|e| format!("seed {seed} [churn]: metrics dump failed: {e}"))?
        );
    }
    Ok(())
}

fn main() {
    let mut show_telemetry = false;
    let mut partition = false;
    let mut corruption = false;
    let mut churn = false;
    let mut seeds: Vec<u64> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--telemetry" {
            show_telemetry = true;
        } else if arg == "--partition" {
            partition = true;
        } else if arg == "--corruption" {
            corruption = true;
        } else if arg == "--churn" {
            churn = true;
        } else {
            seeds.push(arg.parse().unwrap_or_else(|_| panic!("bad seed {arg:?}")));
        }
    }
    if seeds.is_empty() {
        seeds = vec![1, 2, 3];
    }

    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    let base = Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            // The partition matrix needs four rounds: split, two rounds
            // of darkness, heal. The churn matrix likewise: present,
            // two rounds absent, rejoin. The crash matrix keeps its two.
            end_frame: if partition || churn { 160 } else { 100 },
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare");
    let matrix = if partition {
        "partition"
    } else if corruption {
        "integrity"
    } else if churn {
        "churn"
    } else {
        "fault"
    };
    eprintln!("prepared miniature mission; {matrix} matrix over seeds {seeds:?}");

    if partition {
        for &seed in &seeds {
            if let Err(violation) = check_partition_seed(&base, seed, show_telemetry) {
                eprintln!("FAIL: {violation}");
                std::process::exit(1);
            }
        }
        println!("partition smoke OK ({} seeds x 2 scenarios)", seeds.len());
        return;
    }

    if corruption {
        for &seed in &seeds {
            if let Err(violation) = check_corruption_seed(&base, seed, show_telemetry) {
                eprintln!("FAIL: {violation}");
                std::process::exit(1);
            }
        }
        println!("integrity smoke OK ({} seeds)", seeds.len());
        return;
    }

    if churn {
        for &seed in &seeds {
            if let Err(violation) = check_churn_seed(&base, seed, show_telemetry) {
                eprintln!("FAIL: {violation}");
                std::process::exit(1);
            }
        }
        println!("churn smoke OK ({} seeds)", seeds.len());
        return;
    }

    for &seed in &seeds {
        // Always record: on a failed check the flight recorder is the
        // post-mortem, and the miniature mission is cheap to trace.
        let tel = Telemetry::recording(8192);
        if let Err(violation) = check_seed(&base, seed, &tel, show_telemetry) {
            eprintln!("FAIL: {violation}");
            eprintln!(
                "flight recorder, last {POSTMORTEM_ROUNDS} rounds (includes the \
                 failover round):"
            );
            match tel.tail_json(POSTMORTEM_ROUNDS) {
                Ok(tail) => eprintln!("{tail}"),
                Err(e) => eprintln!("(tail dump failed: {e})"),
            }
            std::process::exit(1);
        }
    }
    println!("chaos smoke OK ({} seeds)", seeds.len());
}
