//! Runs every table/figure harness as ONE sharded sweep and tees the
//! combined output to `EXPERIMENTS-report.txt` in the current directory.
//!
//! Table V, Fig. 4 and Fig. 5 run in-process over shared, memoized
//! training artifacts (the detector bank, vocabulary and per-feed records
//! are built once, not once per figure); the remaining harnesses run as
//! single-cell child-process shards. `--workers N` sets the pool size,
//! `--quick` (and other flags) are forwarded to the children, and a
//! killed run resumes from `SWEEP_run_all.manifest.jsonl` without
//! re-executing completed cells. The merged grid lands in
//! `SWEEP_run_all.json`.

use eecs_bench::artifacts::Artifacts;
use eecs_bench::scenarios::{fig4, fig5, shard_cells, table5, workers_from_args};
use eecs_bench::sweep::{run_shards, Shard, SweepOptions, SweepSpec};
use eecs_bench::Scale;
use eecs_core::jsonio::Json;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

/// Report sections, in the original `run_all` order. The sweep executes
/// them concurrently; the report renders them in this order regardless.
const SECTIONS: [&str; 6] = ["table2_3_4", "table5", "fig3", "fig4", "fig5", "fig6"];

fn child_shard(bin: &'static str, exe_dir: PathBuf, args: Vec<String>) -> Shard<'static> {
    let spec = SweepSpec::new(bin).axis("run", ["all"]);
    Shard::new(spec, move |_job| {
        let output = Command::new(exe_dir.join(bin))
            .args(&args)
            .output()
            .map_err(|e| format!("failed to launch {bin}: {e}"))?;
        if !output.status.success() {
            return Err(format!(
                "{bin} FAILED:\n{}",
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        Ok(Json::Str(
            String::from_utf8_lossy(&output.stdout).into_owned(),
        ))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary directory")
        .to_path_buf();

    let artifacts = Artifacts::new(Scale::from_args());
    let shards = vec![
        child_shard("table2_3_4", exe_dir.clone(), args.clone()),
        table5::shard(&artifacts, false),
        child_shard("fig3", exe_dir.clone(), args.clone()),
        fig4::shard(&artifacts),
        fig5::shard(&artifacts),
        child_shard("fig6", exe_dir, args),
    ];

    let manifest = PathBuf::from("SWEEP_run_all.manifest.jsonl");
    let opts = SweepOptions {
        workers: workers_from_args(),
        manifest_path: Some(manifest.clone()),
        progress: true,
        ..Default::default()
    };
    let outcome = run_shards("run_all", &shards, &opts).expect("run_all sweep");
    if outcome.skipped > 0 {
        eprintln!(
            "resumed from {}: skipped {} completed cell(s)",
            manifest.display(),
            outcome.skipped
        );
    }
    let merged = outcome.merged.expect("sweep completed");
    std::fs::write("SWEEP_run_all.json", &merged).expect("writable cwd");
    let doc = eecs_core::jsonio::parse(&merged).expect("merged sweep parses");

    let mut report = String::new();
    for section in SECTIONS {
        report.push_str(&format!("\n########## {section} ##########\n"));
        let text = match section {
            "table5" => table5::format(&doc, false),
            "fig4" => fig4::format(&doc),
            "fig5" => fig5::format(&doc),
            child => shard_cells(&doc, child).and_then(|cells| {
                cells[0]
                    .1
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("{child} cell is not captured output"))
            }),
        }
        .unwrap_or_else(|e| panic!("rendering {section}: {e}"));
        report.push_str(&text);
    }

    print!("{report}");
    let mut file = std::fs::File::create("EXPERIMENTS-report.txt").expect("writable cwd");
    file.write_all(report.as_bytes()).expect("report written");
    let _ = std::fs::remove_file(&manifest);
    println!("\nmerged sweep written to SWEEP_run_all.json");
    println!("report written to EXPERIMENTS-report.txt");
}
