//! Runs every table/figure harness in sequence and tees the combined
//! output to `EXPERIMENTS-report.txt` in the current directory.
//!
//! Flags are forwarded (e.g. `--quick`).

use std::io::Write;
use std::process::Command;

const BINARIES: [&str; 6] = ["table2_3_4", "table5", "fig3", "fig4", "fig5", "fig6"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary directory")
        .to_path_buf();
    let mut report = String::new();

    for bin in BINARIES {
        println!("\n########## {bin} ##########");
        report.push_str(&format!("\n########## {bin} ##########\n"));
        let output = Command::new(exe_dir.join(bin))
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let stdout = String::from_utf8_lossy(&output.stdout);
        print!("{stdout}");
        report.push_str(&stdout);
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            eprintln!("{bin} FAILED:\n{stderr}");
            report.push_str(&format!("{bin} FAILED:\n{stderr}\n"));
        }
    }

    let mut file = std::fs::File::create("EXPERIMENTS-report.txt").expect("writable cwd");
    file.write_all(report.as_bytes()).expect("report written");
    println!("\nreport written to EXPERIMENTS-report.txt");
}
