//! Fig. 5: detected humans vs energy on dataset #1 under two budget
//! regimes, for the three strategies:
//!
//! * all cameras + best algorithms (baseline),
//! * EECS camera subset + best algorithms,
//! * full EECS (subset + algorithm downgrades).
//!
//! Fig. 5a: budget ≥ cost(HOG) → HOG is the best feasible algorithm and
//! EECS can both drop cameras *and* downgrade some to ACF.
//! Fig. 5b: budget ∈ [cost(ACF), cost(HOG)) → only ACF is feasible and the
//! savings come from the camera subset alone.

use eecs_bench::{experiment_bank, experiment_config, fmt3, print_row, Scale};
use eecs_core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs_detect::detection::AlgorithmId;
use eecs_scene::dataset::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let bank = experiment_bank();
    let eecs = experiment_config(&bank);
    let profile = DatasetProfile::lab();
    let (start, end) = scale.bounds(&profile);

    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: start,
            end_frame: end,
            budget_j_per_frame: f64::MAX, // replaced per regime below
            mode: OperatingMode::AllBest,
            eecs,
            feature_words: 24,
            max_training_frames: if scale == Scale::Paper { 40 } else { 8 },
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
            sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
            parallel: eecs_core::simulation::Parallelism::default(),
        },
    )
    .expect("simulation preparation");
    eprintln!("prepared simulation (records + matching)");

    // Budgets derived from the *measured* profiles, as the paper derives
    // them from PowerTutor measurements.
    let record = base.record_for_camera(0);
    let hog = record
        .profile(AlgorithmId::Hog)
        .expect("HOG profiled")
        .energy_per_frame_j;
    let acf = record
        .profile(AlgorithmId::Acf)
        .expect("ACF profiled")
        .energy_per_frame_j;
    let budget_a = hog * 1.10;
    let budget_b = acf + (hog - acf) * 0.3;
    println!(
        "measured per-frame cost: HOG {} J, ACF {} J",
        fmt3(hog),
        fmt3(acf)
    );

    for (label, budget) in [
        ("Fig 5a: budget >= cost(HOG)", budget_a),
        ("Fig 5b: budget in [ACF, HOG)", budget_b),
    ] {
        println!("\n== {label} (B = {} J/frame) ==", fmt3(budget));
        let widths = [24usize, 10, 12, 12, 12];
        print_row(
            &[
                "strategy".into(),
                "detected".into(),
                "% of base".into(),
                "energy (J)".into(),
                "% of base".into(),
            ],
            &widths,
        );
        let mut baseline: Option<(usize, f64)> = None;
        for (name, mode) in [
            ("all cameras, best alg", OperatingMode::AllBest),
            ("EECS camera subset", OperatingMode::CameraSubset),
            ("EECS full", OperatingMode::FullEecs),
        ] {
            let sim = base
                .with_budget(budget)
                .expect("valid budget")
                .with_mode(mode);
            let report = sim.run().expect("simulation run");
            let (base_detected, base_energy) =
                *baseline.get_or_insert((report.correctly_detected, report.total_energy_j));
            print_row(
                &[
                    name.into(),
                    report.correctly_detected.to_string(),
                    format!(
                        "{:.0}%",
                        100.0 * report.correctly_detected as f64 / base_detected.max(1) as f64
                    ),
                    fmt3(report.total_energy_j),
                    format!(
                        "{:.0}%",
                        100.0 * report.total_energy_j / base_energy.max(1e-9)
                    ),
                ],
                &widths,
            );
            // Per-round assignments give the flavor of the adaptation.
            if mode == OperatingMode::FullEecs {
                let round = &report.rounds[0];
                let assign: Vec<String> = round
                    .assignment
                    .iter()
                    .map(|(cam, alg)| format!("cam{cam}:{alg}"))
                    .collect();
                println!("    first-round assignment: {}", assign.join(" "));
            }
        }
    }
}
