//! Fig. 5: detected humans vs energy on dataset #1 under two budget
//! regimes, for the three strategies:
//!
//! * all cameras + best algorithms (baseline),
//! * EECS camera subset + best algorithms,
//! * full EECS (subset + algorithm downgrades).
//!
//! Fig. 5a: budget ≥ cost(HOG) → HOG is the best feasible algorithm and
//! EECS can both drop cameras *and* downgrade some to ACF.
//! Fig. 5b: budget ∈ [cost(ACF), cost(HOG)) → only ACF is feasible and the
//! savings come from the camera subset alone.
//!
//! Runs on the sweep engine: `--workers N` fans the six (regime, strategy)
//! cells over a worker pool, a kill resumes from
//! `SWEEP_fig5.manifest.jsonl`, and the merged grid lands in
//! `SWEEP_fig5.json`.

use eecs_bench::artifacts::Artifacts;
use eecs_bench::scenarios::{self, fig5};
use eecs_bench::Scale;

fn main() {
    let artifacts = Artifacts::new(Scale::from_args());
    let shard = fig5::shard(&artifacts);
    scenarios::run_bin(&shard, "SWEEP_fig5", fig5::format).expect("fig5 sweep");
}
