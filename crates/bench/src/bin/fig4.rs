//! Fig. 4: accuracy (fraction of humans correctly detected) vs energy for
//! fixed camera/algorithm mixes on dataset #1:
//!
//! * two cameras: 2HOG, HOG+ACF, 2ACF,
//! * four cameras: 4HOG, 2HOG+2ACF, 4ACF.
//!
//! The paper's point: 2HOG+2ACF consumes ≈ 54% of 4HOG's energy while
//! detecting 85% vs 92% of the people — a 7-point accuracy hit for nearly
//! half the energy.

use eecs_bench::{
    experiment_bank, experiment_config, experiment_extractor, fmt3, print_row, record_for, Scale,
};
use eecs_core::accuracy::count_correct;
use eecs_core::metadata::{CameraReport, ObjectMetadata};
use eecs_core::profile::TrainingRecord;
use eecs_core::reid::{fuse_reports, ReidConfig};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::AlgorithmId;
use eecs_energy::comm::{metadata_bytes, LinkModel};
use eecs_geometry::calibration::GroundCalibration;
use eecs_geometry::point::Point2;
use eecs_scene::dataset::DatasetProfile;
use eecs_scene::rig::{camera_rig, rig_calibrations};
use eecs_scene::sequence::FrameData;
use eecs_vision::color::mean_color_feature;
use std::collections::BTreeMap;

const GT_GATE_M: f64 = 1.2;

fn main() {
    let scale = Scale::from_args();
    let bank = experiment_bank();
    let config = experiment_config(&bank);
    let profile = DatasetProfile::lab();

    let extractor = experiment_extractor(scale, 24);
    let records: Vec<TrainingRecord> = (0..4)
        .map(|cam| record_for(&profile, cam, &bank, &extractor, &config, scale))
        .collect();
    let rig = camera_rig(&profile);
    let calibrations = rig_calibrations(&profile, &rig);
    let frames: Vec<Vec<FrameData>> = (0..4)
        .map(|cam| eecs_bench::test_frames(&profile, cam, scale))
        .collect();
    eprintln!("prepared {} test frames x 4 cameras", frames[0].len());

    use AlgorithmId::{Acf, Hog};
    let configs: Vec<(&str, Vec<(usize, AlgorithmId)>)> = vec![
        ("2ACF", vec![(0, Acf), (1, Acf)]),
        ("HOG+ACF", vec![(0, Hog), (1, Acf)]),
        ("2HOG", vec![(0, Hog), (1, Hog)]),
        ("4ACF", vec![(0, Acf), (1, Acf), (2, Acf), (3, Acf)]),
        ("2HOG+2ACF", vec![(0, Hog), (1, Hog), (2, Acf), (3, Acf)]),
        ("4HOG", vec![(0, Hog), (1, Hog), (2, Hog), (3, Hog)]),
    ];

    println!("== Fig. 4: accuracy vs energy, dataset #1 ==");
    let widths = [11usize, 10, 10, 10, 12];
    print_row(
        &[
            "config".into(),
            "detected".into(),
            "gt".into(),
            "recall".into(),
            "energy (J)".into(),
        ],
        &widths,
    );

    let reid = ReidConfig {
        ground_gate_m: config.reid_ground_gate_m,
        color_gate: config.reid_color_gate,
        color_metric: None,
    };
    for (name, assignment) in &configs {
        let (correct, gt, energy) = run_config(
            assignment,
            &bank,
            &records,
            &calibrations,
            &frames,
            &config.device,
            &config.link,
            &reid,
            config.eval.min_visibility,
        );
        print_row(
            &[
                (*name).into(),
                correct.to_string(),
                gt.to_string(),
                fmt3(correct as f64 / gt.max(1) as f64),
                fmt3(energy),
            ],
            &widths,
        );
    }
}

/// Runs one fixed configuration over all test frames; returns
/// `(correct, gt_total, energy_j)`.
#[allow(clippy::too_many_arguments)]
fn run_config(
    assignment: &[(usize, AlgorithmId)],
    bank: &DetectorBank,
    records: &[TrainingRecord],
    calibrations: &[GroundCalibration],
    frames: &[Vec<FrameData>],
    device: &eecs_energy::model::DeviceEnergyModel,
    link: &LinkModel,
    reid: &ReidConfig,
    min_visibility: f64,
) -> (usize, usize, f64) {
    let n = frames[0].len();
    let mut correct = 0usize;
    let mut gt_total = 0usize;
    let mut energy = 0.0f64;
    for f in 0..n {
        let mut reports = Vec::new();
        for &(cam, alg) in assignment {
            let frame = &frames[cam][f];
            let p = records[cam].profile(alg).expect("algorithm profiled");
            let out = bank.detector(alg).detect(&frame.image);
            energy += device.processing_energy(out.ops);
            let mut objects = Vec::new();
            for det in out.detections.iter().filter(|d| d.score >= p.threshold) {
                let color = clip_color(&frame.image, det.bbox);
                objects.push(ObjectMetadata {
                    camera: cam,
                    bbox: det.bbox,
                    probability: p.calibration.probability(det.score),
                    color,
                });
            }
            energy += link.transmit_energy(metadata_bytes(objects.len()) + 16, device);
            reports.push(CameraReport { objects });
        }
        let fused = fuse_reports(&reports, calibrations, reid);
        // Ground truth: union over the *participating* cameras.
        let mut gt: BTreeMap<usize, Point2> = BTreeMap::new();
        for &(cam, _) in assignment {
            for g in &frames[cam][f].gt {
                if g.visibility >= min_visibility {
                    gt.entry(g.human_id).or_insert(g.ground);
                }
            }
        }
        let positions: Vec<Point2> = gt.values().copied().collect();
        correct += count_correct(&fused, &positions, GT_GATE_M);
        gt_total += positions.len();
    }
    (correct, gt_total, energy)
}

fn clip_color(img: &eecs_vision::image::RgbImage, bbox: eecs_detect::detection::BBox) -> Vec<f64> {
    let x0 = bbox.x0.max(0.0) as usize;
    let y0 = bbox.y0.max(0.0) as usize;
    let x1 = (bbox.x1.min(img.width() as f64) as usize).min(img.width());
    let y1 = (bbox.y1.min(img.height() as f64) as usize).min(img.height());
    if x1 <= x0 + 1 || y1 <= y0 + 1 {
        return vec![0.0; eecs_vision::color::MEAN_COLOR_DIM];
    }
    mean_color_feature(img, x0, y0, x1 - x0, y1 - y0)
        .unwrap_or_else(|_| vec![0.0; eecs_vision::color::MEAN_COLOR_DIM])
}
