//! Fig. 4: accuracy (fraction of humans correctly detected) vs energy for
//! fixed camera/algorithm mixes on dataset #1:
//!
//! * two cameras: 2HOG, HOG+ACF, 2ACF,
//! * four cameras: 4HOG, 2HOG+2ACF, 4ACF.
//!
//! The paper's point: 2HOG+2ACF consumes ≈ 54% of 4HOG's energy while
//! detecting 85% vs 92% of the people — a 7-point accuracy hit for nearly
//! half the energy.
//!
//! Runs on the sweep engine: `--workers N` fans the six mixes over a
//! worker pool, a kill resumes from `SWEEP_fig4.manifest.jsonl`, and the
//! merged grid lands in `SWEEP_fig4.json`.

use eecs_bench::artifacts::Artifacts;
use eecs_bench::scenarios::{self, fig4};
use eecs_bench::Scale;

fn main() {
    let artifacts = Artifacts::new(Scale::from_args());
    let shard = fig4::shard(&artifacts);
    scenarios::run_bin(&shard, "SWEEP_fig4", fig4::format).expect("fig4 sweep");
}
