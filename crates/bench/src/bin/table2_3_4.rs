//! Tables II, III, IV: per-algorithm threshold, recall, precision, f-score,
//! energy/frame and processing time/frame on:
//!
//! * Table II  — dataset #1, camera #1, training segment,
//! * Table III — dataset #2, camera #1, training segment,
//! * Table IV  — dataset #1, camera #1, test segment (thresholds reused
//!   from training, as in the paper).

use eecs_bench::{experiment_bank, experiment_config, fmt3, print_row, Scale};
use eecs_core::config::EecsConfig;
use eecs_core::training::profile_algorithm;
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::{AlgorithmId, Detection};
use eecs_detect::eval::{evaluate_frame, EvalCounts};
use eecs_scene::dataset::DatasetProfile;
use eecs_scene::sequence::FrameData;

fn main() {
    let scale = Scale::from_args();
    let bank = experiment_bank();
    let config = experiment_config(&bank);

    let lab = DatasetProfile::lab();
    let chap = DatasetProfile::chap();

    println!("== Table II: dataset #1 (lab), camera #1, training segment ==");
    let lab_train = eecs_bench::training_frames(&lab, 0, scale);
    let lab_profiles = run_table(&bank, &lab_train, &config);

    println!("\n== Table III: dataset #2 (chap), camera #1, training segment ==");
    let chap_train = eecs_bench::training_frames(&chap, 0, scale);
    run_table(&bank, &chap_train, &config);

    println!("\n== Table IV: dataset #1 (lab), camera #1, test segment (training thresholds) ==");
    let lab_test = eecs_bench::test_frames(&lab, 0, scale);
    run_test_table(&bank, &lab_test, &lab_profiles, &config);
}

/// Trains thresholds on the segment and prints the table; returns the
/// chosen `(algorithm, threshold)` pairs for Table IV reuse.
fn run_table(
    bank: &DetectorBank,
    frames: &[FrameData],
    config: &EecsConfig,
) -> Vec<(AlgorithmId, f64)> {
    header();
    let mut thresholds = Vec::new();
    for (alg, det) in bank.all() {
        let p = profile_algorithm(alg, det, frames, config);
        print_row(
            &[
                alg.to_string(),
                fmt3(p.threshold),
                fmt3(p.recall),
                fmt3(p.precision),
                fmt3(p.f_score),
                fmt3(p.energy_per_frame_j),
                fmt3(p.processing_time_s),
            ],
            &WIDTHS,
        );
        thresholds.push((alg, p.threshold));
    }
    thresholds
}

/// Applies the *training* thresholds to the test segment (Table IV).
fn run_test_table(
    bank: &DetectorBank,
    frames: &[FrameData],
    thresholds: &[(AlgorithmId, f64)],
    config: &EecsConfig,
) {
    header();
    for &(alg, threshold) in thresholds {
        let det = bank.detector(alg);
        let mut counts = EvalCounts::default();
        let mut ops = 0u64;
        let mut px = (0usize, 0usize);
        for frame in frames {
            let out = det.detect(&frame.image);
            ops += out.ops;
            px = (frame.image.width(), frame.image.height());
            let kept: Vec<&Detection> = out.above(threshold);
            counts.accumulate(evaluate_frame(&kept, &frame.gt, &config.eval));
        }
        let n = frames.len().max(1) as f64;
        let energy = config.device.processing_energy(ops) / n
            + config.link.transmit_energy(
                eecs_energy::comm::jpeg_frame_bytes(px.0, px.1),
                &config.device,
            );
        let time = config.device.processing_time(ops) / n;
        print_row(
            &[
                alg.to_string(),
                fmt3(threshold),
                fmt3(counts.recall()),
                fmt3(counts.precision()),
                fmt3(counts.f_score()),
                fmt3(energy),
                fmt3(time),
            ],
            &WIDTHS,
        );
    }
}

const WIDTHS: [usize; 7] = [5, 10, 8, 10, 8, 14, 12];

fn header() {
    print_row(
        &[
            "Alg".into(),
            "Threshold".into(),
            "Recall".into(),
            "Precision".into(),
            "F-score".into(),
            "Energy(J/fr)".into(),
            "Time(s/fr)".into(),
        ],
        &WIDTHS,
    );
}
