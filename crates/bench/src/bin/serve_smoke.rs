//! CI smoke for the mission service's kill/resume contract.
//!
//! For each seed on the command line (default `1 2 3`):
//!
//! 1. an uninterrupted reference batch runs on 1 worker with no journal;
//! 2. a journaled batch on 2 workers is killed after 2 executed
//!    missions (`stop_after`) — it must return no assembled run;
//! 3. a resumed batch against the same journal must skip exactly the
//!    journaled missions and assemble a service trace *byte-identical*
//!    to the reference.
//!
//! One telemetry handle is shared across the killed and resumed runs, so
//! `serve.runs.<mission> == 1` proves no completed mission re-executed.

use eecs_bench::artifacts::Artifacts;
use eecs_bench::serving::{mixed_batch, service_base};
use eecs_bench::Scale;
use eecs_core::telemetry::Telemetry;
use eecs_serve::{BatchOptions, MissionService, ServiceConfig};
use std::collections::BTreeMap;

fn ensure(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("FAILED: {what}"))
    }
}

fn smoke_seed(base: &eecs_core::simulation::Simulation, seed: u64) -> Result<(), String> {
    let batch = mixed_batch(6, &["acme", "zenith"], true);
    let config = ServiceConfig::new(seed)
        .with_slots(2)
        .with_queue_capacity(4)
        .with_tenant_cap(4);

    eprintln!("[serve_smoke] seed {seed}: reference batch (1 worker, no journal)…");
    let reference = MissionService::new(base.clone(), config.clone().with_workers(1))
        .run_batch(&batch, &BatchOptions::default())?
        .run
        .ok_or("reference batch did not assemble")?;
    let reference_bytes = reference.trace_bytes();
    let admitted = reference.schedule.admitted();
    ensure(
        admitted.len() > 2,
        "batch admits enough missions to kill mid-queue",
    )?;

    let journal = std::env::temp_dir().join(format!(
        "eecs_serve_smoke_{}_{}.jsonl",
        std::process::id(),
        seed
    ));
    let _ = std::fs::remove_file(&journal);
    let telemetry = Telemetry::recording(256);
    let service = MissionService::new(base.clone(), config.clone().with_workers(2))
        .with_telemetry(telemetry.clone());

    eprintln!("[serve_smoke] seed {seed}: killed batch (2 workers, stop after 2)…");
    let killed = service.run_batch(
        &batch,
        &BatchOptions::journaled(journal.clone()).with_stop_after(2),
    )?;
    ensure(killed.run.is_none(), "killed batch must not assemble")?;
    ensure(
        killed.executed == 2,
        "killed batch executes exactly 2 missions",
    )?;

    eprintln!("[serve_smoke] seed {seed}: resumed batch (2 workers, same journal)…");
    let resumed = service.run_batch(&batch, &BatchOptions::journaled(journal.clone()))?;
    let _ = std::fs::remove_file(&journal);
    ensure(
        resumed.skipped == 2,
        "resume skips the 2 journaled missions",
    )?;
    let run = resumed.run.ok_or("resumed batch did not assemble")?;
    ensure(
        run.trace_bytes() == reference_bytes,
        "kill/resume service trace is byte-identical to the uninterrupted run",
    )?;

    // Across kill + resume, every admitted mission executed exactly once.
    let counters: BTreeMap<String, u64> = telemetry
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    for m in &admitted {
        let key = format!("serve.runs.{m}");
        ensure(
            counters.get(&key) == Some(&1),
            &format!("{key} == 1 (no completed mission re-executes)"),
        )?;
    }
    ensure(
        counters.get("serve.executed") == Some(&(admitted.len() as u64)),
        "every admitted mission executed exactly once across kill + resume",
    )?;
    ensure(
        counters.get("serve.skipped") == Some(&2),
        "2 missions skipped in total across kill + resume",
    )?;
    Ok(())
}

fn smoke() -> Result<(), String> {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| a.parse().map_err(|e| format!("bad seed {a}: {e}")))
            .collect::<Result<_, _>>()?;
        if args.is_empty() {
            vec![1, 2, 3]
        } else {
            args
        }
    };
    eprintln!("[serve_smoke] preparing shared base…");
    let artifacts = Artifacts::quick_trained(Scale::Quick, 5);
    let base = service_base(&artifacts);
    for seed in seeds {
        smoke_seed(&base, seed)?;
    }
    Ok(())
}

fn main() {
    match smoke() {
        Ok(()) => println!("serve_smoke: OK"),
        Err(e) => {
            eprintln!("serve_smoke: {e}");
            std::process::exit(1);
        }
    }
}
