//! Fig. 6: detected humans vs energy on dataset #2.
//!
//! On the chap dataset ACF is both the most accurate *and* the most energy
//! efficient algorithm, so EECS cannot save by downgrading — all savings
//! come from using fewer cameras (the paper: 97% of the detections at 70%
//! of the energy).

use eecs_bench::{experiment_bank, experiment_config, fmt3, print_row, Scale};
use eecs_core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs_detect::detection::AlgorithmId;
use eecs_scene::dataset::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let bank = experiment_bank();
    let eecs = experiment_config(&bank);
    let profile = DatasetProfile::chap();
    let (start, end) = scale.bounds(&profile);

    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: start,
            end_frame: end,
            budget_j_per_frame: f64::MAX,
            mode: OperatingMode::AllBest,
            eecs,
            feature_words: 24,
            max_training_frames: if scale == Scale::Paper { 25 } else { 6 },
            boost_every: 0,
            fault_plan: eecs_net::fault::FaultPlan::ideal(),
            sensor_plan: eecs_scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs_net::fault::ControllerFaultPlan::none(),
            parallel: eecs_core::simulation::Parallelism::default(),
        },
    )
    .expect("simulation preparation");
    eprintln!("prepared simulation (records + matching)");

    let record = base.record_for_camera(0);
    let acf = record
        .profile(AlgorithmId::Acf)
        .expect("ACF profiled")
        .energy_per_frame_j;
    // Budget between ACF and the second-cheapest algorithm: only ACF is
    // feasible (the regime in which the paper ran Fig. 6 — "the energy
    // consumption values of ACF ... since the resolution in dataset #2 is
    // significantly higher").
    let second_cheapest = AlgorithmId::ALL
        .iter()
        .filter(|&&a| a != AlgorithmId::Acf)
        .filter_map(|&a| record.profile(a).map(|p| p.energy_per_frame_j))
        .fold(f64::INFINITY, f64::min);
    let budget = acf + (second_cheapest - acf) * 0.3;
    println!(
        "measured per-frame cost: ACF {} J, next-cheapest {} J; budget {} J",
        fmt3(acf),
        fmt3(second_cheapest),
        fmt3(budget)
    );

    println!("\n== Fig. 6: dataset #2 ==");
    let widths = [24usize, 10, 12, 12, 12];
    print_row(
        &[
            "strategy".into(),
            "detected".into(),
            "% of base".into(),
            "energy (J)".into(),
            "% of base".into(),
        ],
        &widths,
    );
    let mut baseline: Option<(usize, f64)> = None;
    for (name, mode) in [
        ("all cameras, best alg", OperatingMode::AllBest),
        ("EECS camera subset", OperatingMode::CameraSubset),
        ("EECS full", OperatingMode::FullEecs),
    ] {
        let sim = base
            .with_budget(budget)
            .expect("valid budget")
            .with_mode(mode);
        let report = sim.run().expect("simulation run");
        let (base_detected, base_energy) =
            *baseline.get_or_insert((report.correctly_detected, report.total_energy_j));
        print_row(
            &[
                name.into(),
                report.correctly_detected.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * report.correctly_detected as f64 / base_detected.max(1) as f64
                ),
                fmt3(report.total_energy_j),
                format!(
                    "{:.0}%",
                    100.0 * report.total_energy_j / base_energy.max(1e-9)
                ),
            ],
            &widths,
        );
        if mode == OperatingMode::FullEecs {
            let cams: Vec<String> = report
                .rounds
                .iter()
                .map(|r| r.active.len().to_string())
                .collect();
            println!("    active cameras per round: {}", cams.join(" "));
        }
    }
}
