//! Mission-service glue over the memoized [`Artifacts`] cache.
//!
//! `eecs-serve` deliberately sits *below* this crate (it takes a
//! prepared [`Simulation`], never builds one), so the artifact sharing
//! the service promises — N missions on one profile pay one training
//! pass — lives here: [`service_base`] builds the shared base through
//! [`Artifacts`], whose bank/extractor/record memos are the single
//! training pass every mission then reuses.

use crate::artifacts::Artifacts;
use eecs_core::config::EecsConfig;
use eecs_core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs_detect::bank::DetectorBank;
use eecs_net::fault::{ChurnPlan, ControllerFaultPlan, CorruptionPlan, FaultPlan, LinkFaults};
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sensor_fault::SensorFaultPlan;
use eecs_serve::{MissionRequest, MissionSpec, Priority};

/// The shared prepared base every mission of one service reuses:
/// miniature Lab profile, 2 cameras, frames 40–70, quick-trained bank
/// out of `artifacts` (trained once, cloned per service, memoized for
/// the process lifetime).
///
/// # Panics
///
/// Panics if preparation fails (deterministic; cannot fail for the
/// miniature configuration).
pub fn service_base(artifacts: &Artifacts) -> Simulation {
    let bank: DetectorBank = artifacts.bank().as_ref().clone();
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 70,
            budget_j_per_frame: 10.0,
            mode: OperatingMode::FullEecs,
            eecs: EecsConfig {
                assessment_period: 10,
                recalibration_interval: 30,
                key_frames: 8,
                ..EecsConfig::default()
            },
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::serial(),
        },
    )
    .expect("miniature service base prepares")
}

/// A deterministic mixed batch for smokes, benches and soaks: `n`
/// requests round-robined over `tenants`, cycling through priorities,
/// budgets, deadlines and — when `chaos` is set — seeded link-loss,
/// corruption and churn plans.
pub fn mixed_batch(n: usize, tenants: &[&str], chaos: bool) -> Vec<MissionRequest> {
    (0..n)
        .map(|i| {
            let tenant = tenants[i % tenants.len().max(1)];
            let priority = match i % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            let mut spec = MissionSpec {
                budget_j_per_frame: Some(8.0 + (i % 3) as f64),
                ..MissionSpec::default()
            };
            if chaos {
                match i % 4 {
                    1 => {
                        spec.fault_plan = Some(
                            FaultPlan::seeded(i as u64)
                                .with_default_faults(LinkFaults::lossy(0.2))
                                .with_corruption(CorruptionPlan::with_rate(0.2)),
                        );
                    }
                    2 => {
                        spec.churn = Some(ChurnPlan::seeded(i as u64).with_random_absence(0.2, 1));
                    }
                    3 => {
                        spec.sensor_plan = Some(SensorFaultPlan::seeded(i as u64));
                    }
                    _ => {}
                }
            }
            MissionRequest::new(tenant)
                .with_priority(priority)
                .with_work(1 + (i as u64 % 3))
                .with_deadline(6 + (i as u64 % 5) * 3)
                .with_spec(spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use eecs_serve::{plan_schedule, ServiceConfig};

    #[test]
    fn mixed_batch_is_deterministic_and_varied() {
        let a = mixed_batch(12, &["a", "b"], true);
        let b = mixed_batch(12, &["a", "b"], true);
        assert_eq!(a, b);
        assert!(a.iter().any(|r| r.priority == Priority::High));
        assert!(a.iter().any(|r| r.spec.churn.is_some()));
        assert!(a.iter().any(|r| r.spec.fault_plan.is_some()));
    }

    #[test]
    fn planned_mixed_batch_admits_and_rejects() {
        let config = ServiceConfig::new(3).with_slots(2).with_queue_capacity(1);
        let batch = mixed_batch(10, &["a", "b", "c"], false);
        let schedule = plan_schedule(&config, &batch);
        assert!(!schedule.admitted().is_empty());
        assert_eq!(
            schedule.admitted().len() + schedule.rejections().len(),
            batch.len()
        );
    }

    #[test]
    fn service_base_prepares_from_shared_artifacts() {
        let artifacts = Artifacts::quick_trained(Scale::Quick, 5);
        let base = service_base(&artifacts);
        // Same artifacts → the memoized bank, not a retrain.
        let again = service_base(&artifacts);
        assert_eq!(base.matched_records(), again.matched_records());
    }
}
