//! Experiment harness for reproducing every table and figure of the paper.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary       | artifact |
//! |--------------|----------|
//! | `table2_3_4` | Tables II, III, IV — per-algorithm accuracy/energy/time |
//! | `table5`     | Table V — 12×12 manifold similarity matrix |
//! | `fig3`       | Fig. 3 — adaptive vs fixed algorithm accuracy |
//! | `fig4`       | Fig. 4 — accuracy/energy trade-off of camera+algorithm mixes |
//! | `fig5`       | Fig. 5a/5b — EECS vs baselines on dataset #1 |
//! | `fig6`       | Fig. 6 — EECS vs baselines on dataset #2 |
//! | `run_all`    | everything, wrote to `EXPERIMENTS-report.txt` |
//!
//! Pass `--quick` to any binary for a reduced frame range (same pipeline,
//! smaller samples) when iterating.
//!
//! This crate also hosts the Criterion benches (`benches/`) that back the
//! energy/time columns and the DESIGN.md §5 ablations.

pub mod artifacts;
pub mod report;
pub mod scenarios;
pub mod serving;
pub mod sweep;

use eecs_core::config::EecsConfig;
use eecs_core::features::FeatureExtractor;
use eecs_core::profile::TrainingRecord;
use eecs_core::training::train_record;
use eecs_detect::bank::DetectorBank;
use eecs_detect::Detector;
use eecs_energy::comm::LinkModel;
use eecs_energy::model::DeviceEnergyModel;
use eecs_scene::dataset::{DatasetId, DatasetProfile};
use eecs_scene::sequence::{FrameData, VideoFeed};

/// How much data an experiment run consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's protocol: train on frames 0–1000, test on 1000–3000,
    /// evaluating every ground-truth-annotated frame.
    Paper,
    /// A reduced range for quick iteration (same cadence, ~¼ the frames).
    Quick,
}

impl Scale {
    /// Parses `--quick` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// `(train_end, test_end)` frame bounds for a dataset.
    pub fn bounds(&self, profile: &DatasetProfile) -> (usize, usize) {
        match self {
            Scale::Paper => (profile.train_frames, profile.total_frames),
            Scale::Quick => (
                profile.train_frames.min(10 * profile.gt_interval),
                profile.train_frames.min(10 * profile.gt_interval) + 14 * profile.gt_interval,
            ),
        }
    }
}

/// Trains the four-detector bank used by all experiments.
///
/// # Panics
///
/// Panics if training fails (deterministic; cannot fail once the configs
/// are valid).
pub fn experiment_bank() -> DetectorBank {
    DetectorBank::train_default().expect("detector bank training is deterministic")
}

/// The experiment energy configuration: radio constants for "WiFi in good
/// conditions" and a processing constant *calibrated* (as the paper did
/// with PowerTutor) so that HOG on a 360×288 frame costs ≈ 1.08 J in total
/// (Table II), of which ~0.03 J is the algorithm-independent communication
/// cost.
pub fn calibrated_device(bank: &DetectorBank) -> DeviceEnergyModel {
    let feed = VideoFeed::open(DatasetProfile::lab(), 0);
    let frames = feed.frames(0, 3 * 25, 25);
    let mut total_ops = 0u64;
    for f in &frames {
        total_ops += bank.hog().detect(&f.image).ops;
    }
    let mean_ops = (total_ops / frames.len() as u64).max(1);
    DeviceEnergyModel {
        joules_per_byte_tx: 1.5e-6,
        radio_overhead_j: 0.005,
        ..Default::default()
    }
    .calibrated_to(mean_ops, 1.049)
    .expect("positive calibration anchors")
}

/// The standard experiment EECS configuration (γ and periods from
/// Section VI-E, calibrated device).
pub fn experiment_config(bank: &DetectorBank) -> EecsConfig {
    EecsConfig {
        device: calibrated_device(bank),
        link: LinkModel::default(),
        ..Default::default()
    }
}

/// Loads the annotated training-segment frames of one feed.
pub fn training_frames(profile: &DatasetProfile, camera: usize, scale: Scale) -> Vec<FrameData> {
    let (train_end, _) = scale.bounds(profile);
    VideoFeed::open(profile.clone(), camera).annotated_frames(0, train_end)
}

/// Loads the annotated test-segment frames of one feed.
pub fn test_frames(profile: &DatasetProfile, camera: usize, scale: Scale) -> Vec<FrameData> {
    let (train_end, test_end) = scale.bounds(profile);
    VideoFeed::open(profile.clone(), camera).annotated_frames(train_end, test_end)
}

/// Builds a feature extractor whose vocabulary spans all 12 training feeds
/// (Section V-A: "a vocabulary of 400 words is built from images of 12
/// training video feeds"; we subsample frames for speed).
///
/// # Panics
///
/// Panics when no keypoints exist in the sampled frames (cannot happen for
/// the standard datasets).
pub fn experiment_extractor(scale: Scale, words: usize) -> FeatureExtractor {
    let mut frames = Vec::new();
    for id in DatasetId::ALL {
        let profile = DatasetProfile::for_id(id);
        for cam in 0..4 {
            let fs = training_frames(&profile, cam, scale);
            frames.extend(fs.iter().take(2).map(|f| f.image.clone()));
        }
    }
    FeatureExtractor::build(&frames, words, 400).expect("training frames contain keypoints")
}

/// Trains the record of one (dataset, camera) training segment.
///
/// # Panics
///
/// Panics on training failure (deterministic inputs).
pub fn record_for(
    profile: &DatasetProfile,
    camera: usize,
    bank: &DetectorBank,
    extractor: &FeatureExtractor,
    config: &EecsConfig,
    scale: Scale,
) -> TrainingRecord {
    let frames = training_frames(profile, camera, scale);
    let name = format!("T_{}.{}", profile.id.number(), camera + 1);
    train_record(&name, &frames, &frames, extractor, bank, config)
        .expect("record training on simulator feeds")
}

/// Fixed-width table printing helper.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Formats a float to 3 decimals, or "-" for non-finite values.
pub fn fmt3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_bounds_paper_protocol() {
        let p = DatasetProfile::lab();
        let (train, test) = Scale::Paper.bounds(&p);
        assert_eq!(train, 1000);
        assert_eq!(test, 3000);
        let (qt, qe) = Scale::Quick.bounds(&p);
        assert!(qt <= train && qe < test);
    }

    #[test]
    fn quick_scale_still_has_frames() {
        for id in DatasetId::ALL {
            let p = DatasetProfile::for_id(id);
            let (train_end, test_end) = Scale::Quick.bounds(&p);
            assert!(train_end / p.gt_interval >= 2, "{id}: train too short");
            assert!(
                (test_end - train_end) / p.gt_interval >= 4,
                "{id}: test too short"
            );
        }
    }

    #[test]
    fn fmt3_handles_nan() {
        assert_eq!(fmt3(f64::NAN), "-");
        assert_eq!(fmt3(1.23456), "1.235");
    }
}
