//! Memoized training artifacts shared across sweep cells.
//!
//! `run_all` used to rebuild the detector bank, the feature vocabulary and
//! the per-(dataset, camera) training records once per figure bin that
//! needed them — identical deterministic work, repeated. [`Artifacts`]
//! hoists each of those into a build-once cache keyed by its inputs, so
//! concurrent sweep cells block only on the *same* key (a slot-level
//! `OnceLock`), never on each other. The memoized values are bit-identical
//! to freshly built ones (training is pure), which
//! `memoized_record_matches_fresh` pins down field by field.

use crate::{calibrated_device, experiment_extractor, record_for, Scale};
use eecs_core::config::EecsConfig;
use eecs_core::features::FeatureExtractor;
use eecs_core::profile::TrainingRecord;
use eecs_detect::bank::DetectorBank;
use eecs_energy::comm::LinkModel;
use eecs_scene::dataset::DatasetProfile;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A build-once-per-key cache: the outer mutex only guards the slot map,
/// so building one key never blocks lookups (or builds) of another.
struct Memo<K, V> {
    slots: Mutex<BTreeMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Ord + Clone, V> Memo<K, V> {
    fn new() -> Memo<K, V> {
        Memo {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut slots = self.slots.lock().expect("memo lock");
            Arc::clone(slots.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(build())))
    }
}

/// How the detector bank is trained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankKind {
    /// The paper's full protocol ([`DetectorBank::train_default`]).
    Default,
    /// The reduced-sample variant tests use ([`DetectorBank::train_quick`]).
    Quick(u64),
}

/// The shared, memoized training artifacts of one experiment run.
pub struct Artifacts {
    scale: Scale,
    bank_kind: BankKind,
    bank: OnceLock<Arc<DetectorBank>>,
    config: OnceLock<Arc<EecsConfig>>,
    extractors: Memo<usize, FeatureExtractor>,
    records: Memo<(usize, usize, usize), TrainingRecord>,
}

impl Artifacts {
    /// Paper-protocol artifacts (full bank training) at the given scale.
    pub fn new(scale: Scale) -> Artifacts {
        Artifacts::with_kind(scale, BankKind::Default)
    }

    /// Quick-trained artifacts for tests and smoke runs: same caching, a
    /// much cheaper (seeded) bank.
    pub fn quick_trained(scale: Scale, seed: u64) -> Artifacts {
        Artifacts::with_kind(scale, BankKind::Quick(seed))
    }

    fn with_kind(scale: Scale, bank_kind: BankKind) -> Artifacts {
        Artifacts {
            scale,
            bank_kind,
            bank: OnceLock::new(),
            config: OnceLock::new(),
            extractors: Memo::new(),
            records: Memo::new(),
        }
    }

    /// The experiment scale the records are trained at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The detector bank (trained on first use).
    ///
    /// # Panics
    ///
    /// Panics if bank training fails (deterministic; cannot fail for the
    /// built-in configurations).
    pub fn bank(&self) -> Arc<DetectorBank> {
        Arc::clone(self.bank.get_or_init(|| {
            let bank = match self.bank_kind {
                BankKind::Default => DetectorBank::train_default(),
                BankKind::Quick(seed) => DetectorBank::train_quick(seed),
            };
            Arc::new(bank.expect("detector bank training is deterministic"))
        }))
    }

    /// The calibrated experiment configuration (built on first use; forces
    /// the bank).
    pub fn config(&self) -> Arc<EecsConfig> {
        Arc::clone(self.config.get_or_init(|| {
            Arc::new(EecsConfig {
                device: calibrated_device(&self.bank()),
                link: LinkModel::default(),
                ..Default::default()
            })
        }))
    }

    /// The shared feature extractor for a vocabulary size.
    pub fn extractor(&self, words: usize) -> Arc<FeatureExtractor> {
        self.extractors
            .get_or_build(words, || experiment_extractor(self.scale, words))
    }

    /// The training record of one (dataset, camera) feed, keyed by
    /// `(dataset number, camera, vocabulary words)` — built at most once
    /// per key for the lifetime of the artifacts.
    pub fn record(
        &self,
        profile: &DatasetProfile,
        camera: usize,
        words: usize,
    ) -> Arc<TrainingRecord> {
        let key = (profile.id.number(), camera, words);
        self.records.get_or_build(key, || {
            record_for(
                profile,
                camera,
                &self.bank(),
                &self.extractor(words),
                &self.config(),
                self.scale,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_core::par::par_map_indexed;

    fn assert_records_bit_identical(a: &TrainingRecord, b: &TrainingRecord) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.video.name(), b.video.name());
        let (fa, fb) = (a.video.features().as_slice(), b.video.features().as_slice());
        assert_eq!(fa.len(), fb.len());
        assert!(
            fa.iter().zip(fb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "key-frame features differ"
        );
        let algos: Vec<_> = a.profiles.keys().copied().collect();
        assert_eq!(algos, b.profiles.keys().copied().collect::<Vec<_>>());
        for algo in algos {
            let (pa, pb) = (a.profile(algo).unwrap(), b.profile(algo).unwrap());
            for (x, y) in [
                (pa.threshold, pb.threshold),
                (pa.recall, pb.recall),
                (pa.precision, pb.precision),
                (pa.f_score, pb.f_score),
                (pa.energy_per_frame_j, pb.energy_per_frame_j),
                (pa.processing_time_s, pb.processing_time_s),
                (pa.calibration.parts().0, pb.calibration.parts().0),
                (pa.calibration.parts().1, pb.calibration.parts().1),
            ] {
                assert_eq!(x.to_bits(), y.to_bits(), "{algo:?} profile field differs");
            }
        }
    }

    #[test]
    fn memoized_record_matches_fresh() {
        let artifacts = Artifacts::quick_trained(Scale::Quick, 42);
        let profile = DatasetProfile::miniature(eecs_scene::dataset::DatasetId::Lab);
        let words = 12;

        let memoized = artifacts.record(&profile, 0, words);
        // Same key → the cached Arc, not a rebuild.
        assert!(Arc::ptr_eq(
            &memoized,
            &artifacts.record(&profile, 0, words)
        ));

        // A from-scratch build of the same record is bit-identical.
        let fresh = record_for(
            &profile,
            0,
            &artifacts.bank(),
            &artifacts.extractor(words),
            &artifacts.config(),
            artifacts.scale(),
        );
        assert_records_bit_identical(&memoized, &fresh);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let artifacts = Artifacts::quick_trained(Scale::Quick, 7);
        let profile = DatasetProfile::miniature(eecs_scene::dataset::DatasetId::Lab);
        let records = par_map_indexed(4, 4, |_| artifacts.record(&profile, 1, 12));
        for r in &records[1..] {
            assert!(Arc::ptr_eq(&records[0], r));
        }
    }
}
