//! Machine-readable benchmark reports (`BENCH_pipeline.json`).
//!
//! The pipeline bench (`benches/pipeline.rs`) emits a small JSON document
//! at the repository root recording each benchmark's mean time plus
//! derived metrics (serial-vs-parallel speedup of the full assessment
//! round). Future PRs regress against this trajectory; CI smoke-checks
//! that the file exists and is well-formed (`src/bin/check_bench.rs`).
//!
//! The build environment is offline (no serde), so this module carries
//! its own writer and a minimal JSON parser — just enough of RFC 8259 to
//! round-trip what the writer produces and to validate the file.

use std::fmt::Write as _;

/// One benchmark's result: the label and the mean wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Benchmark label (`group/name` for grouped benches).
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: u128,
}

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "eecs-bench-pipeline/1";

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a pipeline report: the benchmark entries in run order plus
/// named derived metrics (e.g. `round_speedup`).
pub fn render(entries: &[BenchEntry], metrics: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(out, "  \"schema\": \"{SCHEMA}\",\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\"name\": \"");
        escape_into(&mut out, &e.name);
        let _ = write!(out, "\", \"mean_ns\": {}}}", e.mean_ns);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        out.push_str("    \"");
        escape_into(&mut out, name);
        // {:?} keeps a fractional part on round numbers, so the value
        // re-parses as the same f64.
        let _ = write!(out, "\": {value:?}");
        out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// A parsed JSON value — the subset the report writer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// content.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// What a well-formed pipeline report contains.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSummary {
    /// Parsed benchmark entries.
    pub entries: Vec<BenchEntry>,
    /// The serial-vs-parallel speedup of the full assessment round.
    pub round_speedup: f64,
}

/// Validates a `BENCH_pipeline.json` document: schema tag, a non-empty
/// entry list with positive times, and the `round_speedup` metric.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_pipeline_report(text: &str) -> Result<PipelineSummary, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let raw_entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing \"entries\" array")?;
    if raw_entries.is_empty() {
        return Err("\"entries\" is empty".into());
    }
    let mut entries = Vec::with_capacity(raw_entries.len());
    for e in raw_entries {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry missing \"name\"")?;
        let mean_ns = e
            .get("mean_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("entry {name:?} missing \"mean_ns\""))?;
        if !(mean_ns.is_finite() && mean_ns > 0.0) {
            return Err(format!("entry {name:?} has non-positive mean_ns"));
        }
        entries.push(BenchEntry {
            name: name.to_owned(),
            mean_ns: mean_ns as u128,
        });
    }
    let round_speedup = doc
        .get("metrics")
        .and_then(|m| m.get("round_speedup"))
        .and_then(Json::as_num)
        .ok_or("missing metrics.round_speedup")?;
    if !(round_speedup.is_finite() && round_speedup > 0.0) {
        return Err("round_speedup must be positive".into());
    }
    Ok(PipelineSummary {
        entries,
        round_speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                name: "reid_fuse_4cams_8people".into(),
                mean_ns: 120_000,
            },
            BenchEntry {
                name: "simulation/full_eecs_round_serial".into(),
                mean_ns: 2_000_000_000,
            },
        ]
    }

    #[test]
    fn render_then_validate_round_trips() {
        let text = render(&sample_entries(), &[("round_speedup".into(), 2.5)]);
        let summary = validate_pipeline_report(&text).unwrap();
        assert_eq!(summary.entries, sample_entries());
        assert!((summary.round_speedup - 2.5).abs() < 1e-12);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = parse(r#"{"a": [1, -2.5e3, "x\"y\n", null, true], "b": {}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\"y\n"));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Bool(true));
        assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn validation_rejects_structural_problems() {
        assert!(validate_pipeline_report("{}").is_err());
        let bad_schema =
            render(&sample_entries(), &[("round_speedup".into(), 2.0)]).replace(SCHEMA, "other/9");
        assert!(validate_pipeline_report(&bad_schema).is_err());
        let no_entries = render(&[], &[("round_speedup".into(), 2.0)]);
        assert!(validate_pipeline_report(&no_entries).is_err());
        let no_speedup = render(&sample_entries(), &[]);
        assert!(validate_pipeline_report(&no_speedup).is_err());
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        let entries = vec![BenchEntry {
            name: "weird \"quoted\"\tname\\path".into(),
            mean_ns: 7,
        }];
        let text = render(&entries, &[("round_speedup".into(), 1.0)]);
        let summary = validate_pipeline_report(&text).unwrap();
        assert_eq!(summary.entries, entries);
    }
}
