//! Machine-readable benchmark reports (`BENCH_pipeline.json`).
//!
//! The pipeline bench (`benches/pipeline.rs`) emits a small JSON document
//! at the repository root recording each benchmark's mean time plus
//! derived metrics (serial-vs-parallel speedup of the full assessment
//! round). Future PRs regress against this trajectory; CI smoke-checks
//! that the file exists and is well-formed (`src/bin/check_bench.rs`).
//!
//! The build environment is offline (no serde); the JSON value tree and
//! parser live in [`eecs_core::jsonio`] (shared with the controller
//! checkpoint) and are re-exported here for compatibility — this module
//! adds only the report writer and its schema validation.

use std::fmt::Write as _;

pub use eecs_core::jsonio::{escape_into, parse, Json};

/// One benchmark's result: the label and the mean wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Benchmark label (`group/name` for grouped benches).
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: u128,
}

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "eecs-bench-pipeline/1";

/// Renders a pipeline report: the benchmark entries in run order plus
/// named derived metrics (e.g. `round_speedup`).
pub fn render(entries: &[BenchEntry], metrics: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\"name\": \"");
        escape_into(&mut out, &e.name);
        let _ = write!(out, "\", \"mean_ns\": {}}}", e.mean_ns);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        out.push_str("    \"");
        escape_into(&mut out, name);
        // {:?} keeps a fractional part on round numbers, so the value
        // re-parses as the same f64.
        let _ = write!(out, "\": {value:?}");
        out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Metric-name prefix of the per-kernel optimized-vs-reference ratios
/// (`kernel_speedup_c4`, `kernel_speedup_hog`, …).
pub const KERNEL_SPEEDUP_PREFIX: &str = "kernel_speedup_";

/// What a well-formed pipeline report contains.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSummary {
    /// Parsed benchmark entries.
    pub entries: Vec<BenchEntry>,
    /// The serial-vs-parallel speedup of the full assessment round.
    pub round_speedup: f64,
    /// The 1-worker vs 4-worker speedup of the benchmark sweep grid.
    ///
    /// Like `round_speedup`, validated as finite and positive rather
    /// than against a numeric floor: on a single-core host (where CI
    /// runs) both collapse to ~1×, while the ≥2× expectation applies on
    /// multi-core hardware.
    pub sweep_speedup: f64,
    /// Per-kernel optimized-vs-reference speedups, in report order, with
    /// the [`KERNEL_SPEEDUP_PREFIX`] stripped (`("c4", 3.4)`, …). Both
    /// sides of each ratio are measured in the *same* run on the same
    /// host, so the ratio — unlike absolute entry times — is comparable
    /// across runs and hosts; `check_bench --baseline` regresses on it.
    /// Empty for reports predating the kernel benches.
    pub kernel_speedups: Vec<(String, f64)>,
    /// Cores visible to the benchmark host, when recorded. Gates how
    /// `check_bench` treats the parallel speedups: ~1× is expected on one
    /// core and a defect on many.
    pub host_parallelism: Option<f64>,
    /// Controller-side bookkeeping cost of one camera departure +
    /// rejoin (quarantine purge, sticky-plan retain, stale
    /// assessment-cache eviction), when recorded. Validated finite and
    /// non-negative — a sub-resolution timer may legally report zero.
    /// Absent in reports predating the elastic-fleet benches.
    pub churn_replan_ns: Option<f64>,
    /// Mission-service throughput ratio (1 worker / 4 workers) over
    /// byte-identical service traces, when recorded. Host-relative like
    /// `sweep_speedup`, validated finite and positive. Absent in
    /// reports predating the serving layer.
    pub serve_speedup: Option<f64>,
}

/// Validates a `BENCH_pipeline.json` document: schema tag, a non-empty
/// entry list with positive times, and the `round_speedup` and
/// `sweep_speedup` metrics.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_pipeline_report(text: &str) -> Result<PipelineSummary, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let raw_entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing \"entries\" array")?;
    if raw_entries.is_empty() {
        return Err("\"entries\" is empty".into());
    }
    let mut entries = Vec::with_capacity(raw_entries.len());
    for e in raw_entries {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry missing \"name\"")?;
        let mean_ns = e
            .get("mean_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("entry {name:?} missing \"mean_ns\""))?;
        if !(mean_ns.is_finite() && mean_ns > 0.0) {
            return Err(format!("entry {name:?} has non-positive mean_ns"));
        }
        entries.push(BenchEntry {
            name: name.to_owned(),
            mean_ns: mean_ns as u128,
        });
    }
    let speedup = |name: &str| -> Result<f64, String> {
        let value = doc
            .get("metrics")
            .and_then(|m| m.get(name))
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing metrics.{name}"))?;
        if !(value.is_finite() && value > 0.0) {
            return Err(format!("{name} must be positive"));
        }
        Ok(value)
    };
    let mut kernel_speedups = Vec::new();
    if let Some(Json::Obj(metrics)) = doc.get("metrics") {
        for (name, value) in metrics {
            let Some(kernel) = name.strip_prefix(KERNEL_SPEEDUP_PREFIX) else {
                continue;
            };
            let value = value
                .as_num()
                .ok_or_else(|| format!("metrics.{name} is not a number"))?;
            if !(value.is_finite() && value > 0.0) {
                return Err(format!("{name} must be positive"));
            }
            kernel_speedups.push((kernel.to_owned(), value));
        }
    }
    let host_parallelism = doc
        .get("metrics")
        .and_then(|m| m.get("host_parallelism"))
        .and_then(Json::as_num);
    let churn_replan_ns = doc
        .get("metrics")
        .and_then(|m| m.get("churn_replan_ns"))
        .map(|v| {
            let value = v
                .as_num()
                .ok_or("metrics.churn_replan_ns is not a number")?;
            if !(value.is_finite() && value >= 0.0) {
                return Err(format!("churn_replan_ns must be non-negative, got {value}"));
            }
            Ok(value)
        })
        .transpose()?;
    let serve_speedup = doc
        .get("metrics")
        .and_then(|m| m.get("serve_speedup"))
        .map(|v| {
            let value = v.as_num().ok_or("metrics.serve_speedup is not a number")?;
            if !(value.is_finite() && value > 0.0) {
                return Err(format!("serve_speedup must be positive, got {value}"));
            }
            Ok(value)
        })
        .transpose()?;
    Ok(PipelineSummary {
        entries,
        round_speedup: speedup("round_speedup")?,
        sweep_speedup: speedup("sweep_speedup")?,
        kernel_speedups,
        host_parallelism,
        churn_replan_ns,
        serve_speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                name: "reid_fuse_4cams_8people".into(),
                mean_ns: 120_000,
            },
            BenchEntry {
                name: "simulation/full_eecs_round_serial".into(),
                mean_ns: 2_000_000_000,
            },
        ]
    }

    fn sample_metrics() -> Vec<(String, f64)> {
        vec![("round_speedup".into(), 2.5), ("sweep_speedup".into(), 3.5)]
    }

    #[test]
    fn render_then_validate_round_trips() {
        let text = render(&sample_entries(), &sample_metrics());
        let summary = validate_pipeline_report(&text).unwrap();
        assert_eq!(summary.entries, sample_entries());
        assert!((summary.round_speedup - 2.5).abs() < 1e-12);
        assert!((summary.sweep_speedup - 3.5).abs() < 1e-12);
        assert!(summary.kernel_speedups.is_empty());
        assert_eq!(summary.host_parallelism, None);
    }

    #[test]
    fn kernel_speedups_and_host_parallelism_parsed() {
        let mut metrics = sample_metrics();
        metrics.push(("kernel_speedup_c4".into(), 3.4));
        metrics.push(("kernel_speedup_hog".into(), 1.8));
        metrics.push(("host_parallelism".into(), 4.0));
        let text = render(&sample_entries(), &metrics);
        let summary = validate_pipeline_report(&text).unwrap();
        assert_eq!(
            summary.kernel_speedups,
            vec![("c4".to_string(), 3.4), ("hog".to_string(), 1.8)]
        );
        assert_eq!(summary.host_parallelism, Some(4.0));
    }

    #[test]
    fn churn_replan_ns_parsed_and_sign_checked() {
        // Absent: the field stays None and validation passes.
        let text = render(&sample_entries(), &sample_metrics());
        assert_eq!(
            validate_pipeline_report(&text).unwrap().churn_replan_ns,
            None
        );
        // Present and non-negative (zero is legal — noise-clamped).
        for value in [0.0, 125_000.0] {
            let mut metrics = sample_metrics();
            metrics.push(("churn_replan_ns".into(), value));
            let text = render(&sample_entries(), &metrics);
            assert_eq!(
                validate_pipeline_report(&text).unwrap().churn_replan_ns,
                Some(value)
            );
        }
        // Negative is rejected.
        let mut metrics = sample_metrics();
        metrics.push(("churn_replan_ns".into(), -1.0));
        let text = render(&sample_entries(), &metrics);
        assert!(validate_pipeline_report(&text)
            .unwrap_err()
            .contains("churn_replan_ns"));
    }

    #[test]
    fn serve_speedup_parsed_and_sign_checked() {
        // Absent: the field stays None and validation passes.
        let text = render(&sample_entries(), &sample_metrics());
        assert_eq!(validate_pipeline_report(&text).unwrap().serve_speedup, None);
        // Present and positive.
        let mut metrics = sample_metrics();
        metrics.push(("serve_speedup".into(), 1.7));
        let text = render(&sample_entries(), &metrics);
        assert_eq!(
            validate_pipeline_report(&text).unwrap().serve_speedup,
            Some(1.7)
        );
        // Zero is rejected: a throughput ratio over two real runs is
        // never zero.
        let mut metrics = sample_metrics();
        metrics.push(("serve_speedup".into(), 0.0));
        let text = render(&sample_entries(), &metrics);
        assert!(validate_pipeline_report(&text)
            .unwrap_err()
            .contains("serve_speedup"));
    }

    #[test]
    fn non_positive_kernel_speedup_rejected() {
        let mut metrics = sample_metrics();
        metrics.push(("kernel_speedup_acf".into(), 0.0));
        let text = render(&sample_entries(), &metrics);
        assert!(validate_pipeline_report(&text)
            .unwrap_err()
            .contains("kernel_speedup_acf"));
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = parse(r#"{"a": [1, -2.5e3, "x\"y\n", null, true], "b": {}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\"y\n"));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Bool(true));
        assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn validation_rejects_structural_problems() {
        assert!(validate_pipeline_report("{}").is_err());
        let bad_schema = render(&sample_entries(), &sample_metrics()).replace(SCHEMA, "other/9");
        assert!(validate_pipeline_report(&bad_schema).is_err());
        let no_entries = render(&[], &sample_metrics());
        assert!(validate_pipeline_report(&no_entries).is_err());
        let no_speedup = render(&sample_entries(), &[]);
        assert!(validate_pipeline_report(&no_speedup).is_err());
        // Each speedup metric is individually required.
        let only_round = render(&sample_entries(), &[("round_speedup".into(), 2.0)]);
        assert!(validate_pipeline_report(&only_round)
            .unwrap_err()
            .contains("sweep_speedup"));
        let only_sweep = render(&sample_entries(), &[("sweep_speedup".into(), 2.0)]);
        assert!(validate_pipeline_report(&only_sweep)
            .unwrap_err()
            .contains("round_speedup"));
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        let entries = vec![BenchEntry {
            name: "weird \"quoted\"\tname\\path".into(),
            mean_ns: 7,
        }];
        let text = render(&entries, &sample_metrics());
        let summary = validate_pipeline_report(&text).unwrap();
        assert_eq!(summary.entries, entries);
    }
}
