//! Sharded scenario-sweep engine with resumable manifests.
//!
//! The paper's entire evaluation (Tables II–V, Figs. 3–6) is a grid of
//! *independent* cells — (dataset profile × strategy × budget × seed) —
//! yet the original harness binaries executed them one at a time on one
//! core. This module turns such a grid into a declarative [`SweepSpec`]
//! (axes of labels), expands it into a job list, executes the jobs across
//! a work-stealing worker pool ([`eecs_core::par::par_map_streamed`]),
//! and streams every finished cell as a bit-stable [`eecs_core::jsonio`]
//! record into an append-only [manifest](self::load_manifest) file.
//!
//! Determinism contract (enforced by `tests/sweep_determinism.rs`,
//! `tests/sweep_resume.rs` and the golden `sweep_tiny.json` snapshot):
//!
//! * every cell runner is a pure function of its job coordinates, so
//! * the final merged `SWEEP_<name>.json` document is **byte-identical**
//!   regardless of worker count, job execution order, or any kill/resume
//!   history — cells are merged in canonical job order, and a resumed
//!   cell re-serializes to the same bytes it was recorded with
//!   (encode → decode → encode is a fixed point in `jsonio`).
//!
//! A killed sweep resumes by loading the manifest and skipping complete
//! cells; per-cell `sweep.runs.<cell>` telemetry counters prove that no
//! completed cell ever re-executes.

use eecs_core::checksum::crc32;
use eecs_core::jsonio::{self, Json};
use eecs_core::par::par_map_streamed;
use eecs_core::telemetry::Telemetry;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag of the merged sweep document.
pub const SWEEP_SCHEMA: &str = "eecs-sweep/1";

/// Schema tag of the manifest header line. `/2` added a per-record
/// CRC-32 member, so interior bit-rot is pinpointed to its line as a
/// typed [`ManifestError::ChecksumMismatch`] instead of being half-read.
pub const MANIFEST_SCHEMA: &str = "eecs-sweep-manifest/2";

/// One sweep axis: a name and its ordered value labels.
///
/// Labels are strings on purpose — the runner maps them back to typed
/// values (budgets, seeds, fault plans), while the engine, the manifest
/// and the merged document only ever see stable text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// Axis name (e.g. `budget`).
    pub name: String,
    /// Ordered value labels (e.g. `["5a", "5b"]`).
    pub values: Vec<String>,
}

/// A declarative sweep: a name plus axes whose cartesian product is the
/// job list (last axis fastest, like nested `for` loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep (or shard) name; becomes the cell-id prefix.
    pub name: String,
    /// The axes, outermost first.
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// An empty spec with the given name.
    pub fn new(name: impl Into<String>) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            axes: Vec::new(),
        }
    }

    /// Appends one axis (builder style).
    pub fn axis<I, S>(mut self, name: impl Into<String>, values: I) -> SweepSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.axes.push(SweepAxis {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Structural validation: a non-empty name, at least one axis, no
    /// empty axis, and no duplicate axis names or duplicate values within
    /// an axis (duplicates would collide in the manifest).
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("sweep spec has an empty name".into());
        }
        if self.axes.is_empty() {
            return Err(format!("sweep {:?} has no axes", self.name));
        }
        let mut axis_names = std::collections::BTreeSet::new();
        for axis in &self.axes {
            if axis.name.is_empty() {
                return Err(format!("sweep {:?} has an unnamed axis", self.name));
            }
            if !axis_names.insert(&axis.name) {
                return Err(format!(
                    "sweep {:?}: duplicate axis {:?}",
                    self.name, axis.name
                ));
            }
            if axis.values.is_empty() {
                return Err(format!(
                    "sweep {:?}: axis {:?} is empty",
                    self.name, axis.name
                ));
            }
            let mut seen = std::collections::BTreeSet::new();
            for v in &axis.values {
                if !seen.insert(v) {
                    return Err(format!(
                        "sweep {:?}: axis {:?} repeats value {v:?}",
                        self.name, axis.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of cells (the product of the axis sizes).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expands the cartesian product into jobs with *local* indices
    /// `0..cell_count()`, last axis fastest.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let total = self.cell_count();
        let mut jobs = Vec::with_capacity(total);
        for index in 0..total {
            let mut coords = Vec::with_capacity(self.axes.len());
            let mut rem = index;
            for axis in self.axes.iter().rev() {
                let k = rem % axis.values.len();
                rem /= axis.values.len();
                coords.push((axis.name.clone(), axis.values[k].clone()));
            }
            coords.reverse();
            jobs.push(SweepJob {
                index,
                shard: self.name.clone(),
                coords,
            });
        }
        jobs
    }

    /// The spec as a JSON value (part of the manifest identity and the
    /// merged document).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "axes".into(),
                Json::Arr(
                    self.axes
                        .iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(a.name.clone())),
                                (
                                    "values".into(),
                                    Json::Arr(a.values.iter().cloned().map(Json::Str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One cell of a sweep: its global index and its axis coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// Global index in the (possibly multi-shard) job list.
    pub index: usize,
    /// Name of the owning shard's spec.
    pub shard: String,
    /// `(axis, value)` pairs, outermost axis first.
    pub coords: Vec<(String, String)>,
}

impl SweepJob {
    /// The value label of one axis.
    pub fn value(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// The stable cell identifier: `shard:axis=value/axis=value/…`.
    pub fn cell_id(&self) -> String {
        let coords: Vec<String> = self
            .coords
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect();
        format!("{}:{}", self.shard, coords.join("/"))
    }
}

/// One finished cell: where it sits in the job list and what it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Global job index.
    pub index: usize,
    /// Cell identifier ([`SweepJob::cell_id`]).
    pub cell: String,
    /// The runner's output.
    pub data: Json,
}

impl CellRecord {
    /// The record as a JSON value (one manifest line).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".into(), Json::Num(self.index as f64)),
            ("cell".into(), Json::Str(self.cell.clone())),
            ("data".into(), self.data.clone()),
        ])
    }

    /// Parses a record from a manifest-line JSON value.
    ///
    /// # Errors
    ///
    /// Returns an error when a field is missing or malformed.
    pub fn from_json(v: &Json) -> Result<CellRecord, String> {
        let index = v
            .get("index")
            .and_then(Json::as_num)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .ok_or("cell record missing integral \"index\"")? as usize;
        let cell = v
            .get("cell")
            .and_then(Json::as_str)
            .ok_or("cell record missing \"cell\"")?
            .to_owned();
        let data = v.get("data").ok_or("cell record missing \"data\"")?.clone();
        Ok(CellRecord { index, cell, data })
    }
}

/// Merges two partial cell sets: the union, deduplicated by index (first
/// occurrence wins), sorted by index. Commutative on disjoint or
/// consistent inputs and associative — the properties
/// `tests/properties.rs` pins down.
pub fn combine(a: &[CellRecord], b: &[CellRecord]) -> Vec<CellRecord> {
    let mut by_index: BTreeMap<usize, &CellRecord> = BTreeMap::new();
    for rec in a.iter().chain(b) {
        by_index.entry(rec.index).or_insert(rec);
    }
    by_index.into_values().cloned().collect()
}

/// The manifest identity header: binds a manifest file to one sweep
/// (name + every shard's axes), so a stale or foreign manifest can never
/// silently poison a resume.
pub fn manifest_identity(name: &str, specs: &[&SweepSpec]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(MANIFEST_SCHEMA.into())),
        ("sweep".into(), Json::Str(name.into())),
        (
            "shards".into(),
            Json::Arr(specs.iter().map(|s| s.to_json()).collect()),
        ),
    ])
}

/// Why a manifest could not be loaded — each variant pinpoints the
/// failing line, so interior bit-rot names exactly the record it hit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The file exists but cannot be read.
    Io {
        /// Manifest path.
        path: String,
        /// Underlying I/O error text.
        error: String,
    },
    /// The header line is not valid JSON or names a different sweep.
    Header {
        /// Manifest path.
        path: String,
        /// What was wrong with the header.
        reason: String,
    },
    /// An interior record line failed to parse (final-line tears from a
    /// kill mid-write are tolerated, not errors).
    CorruptRecord {
        /// Manifest path.
        path: String,
        /// 1-based line number of the corrupt record.
        line: usize,
        /// Parse failure detail.
        reason: String,
    },
    /// A record parsed but its stored CRC-32 does not match the record's
    /// canonical bytes — interior bit-rot, pinpointed to its line.
    ChecksumMismatch {
        /// Manifest path.
        path: String,
        /// 1-based line number of the rotten record.
        line: usize,
        /// CRC the line claims.
        expected: u32,
        /// CRC recomputed from the record it carries.
        actual: u32,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io { path, error } => {
                write!(f, "cannot read manifest {path}: {error}")
            }
            ManifestError::Header { path, reason } => {
                write!(f, "manifest {path}: {reason}")
            }
            ManifestError::CorruptRecord { path, line, reason } => {
                write!(
                    f,
                    "manifest {path}: corrupt record on line {line}: {reason}"
                )
            }
            ManifestError::ChecksumMismatch {
                path,
                line,
                expected,
                actual,
            } => write!(
                f,
                "manifest {path}: checksum mismatch on line {line}: \
                 recorded {expected:#010x}, recomputed {actual:#010x} — interior bit-rot"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One manifest line for a record: the record's members plus a trailing
/// `"crc"` member holding the CRC-32 of the record's *canonical*
/// encoding ([`CellRecord::to_json`] without the crc). Verification
/// recomputes that CRC from the parsed record — sound because
/// encode → decode → encode is a fixed point in `jsonio`.
///
/// # Errors
///
/// Returns an error when the record holds a non-finite number.
pub fn record_line(rec: &CellRecord) -> Result<String, String> {
    let canonical = rec.to_json().write()?;
    let crc = crc32(canonical.as_bytes());
    let Json::Obj(mut members) = rec.to_json() else {
        unreachable!("cell records serialize to objects")
    };
    members.push(("crc".into(), Json::Num(f64::from(crc))));
    Json::Obj(members).write()
}

/// Parses and checksum-verifies one manifest record line.
fn parse_record_line(line: &str) -> Result<CellRecord, (bool, String, u32, u32)> {
    let parse_err = |reason: String| (false, reason, 0, 0);
    let v = jsonio::parse(line).map_err(parse_err)?;
    let rec = CellRecord::from_json(&v).map_err(parse_err)?;
    let stored =
        v.get("crc")
            .and_then(Json::as_num)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0 && *n <= f64::from(u32::MAX))
            .ok_or_else(|| parse_err("record missing integral \"crc\"".into()))? as u32;
    let canonical = rec
        .to_json()
        .write()
        .map_err(|e| parse_err(format!("cannot re-encode record: {e}")))?;
    let actual = crc32(canonical.as_bytes());
    if stored != actual {
        return Err((true, String::new(), stored, actual));
    }
    Ok(rec)
}

/// Loads a manifest: header line (verified against `identity`) followed
/// by one checksummed [`CellRecord`] JSON line per completed cell
/// (see [`record_line`]).
///
/// A missing file is an empty manifest. A malformed **final** line is
/// tolerated and ignored — it is the signature of a kill mid-write; a
/// malformed or checksum-mismatched line anywhere else is corruption
/// and a typed [`ManifestError`] naming the line. Duplicate indices
/// keep the first record.
///
/// # Errors
///
/// Returns a [`ManifestError`] on a header mismatch or interior
/// corruption.
pub fn load_manifest(path: &Path, identity: &Json) -> Result<Vec<CellRecord>, ManifestError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ManifestError::Io {
                path: path.display().to_string(),
                error: e.to_string(),
            })
        }
    };
    let mut lines: Vec<&str> = text.lines().collect();
    // A trailing newline-terminated file yields no empty last element from
    // `lines()`; an unterminated (killed mid-write) final line does.
    let last_complete = text.ends_with('\n');
    if lines.is_empty() {
        return Ok(Vec::new());
    }
    let header = jsonio::parse(lines[0]).map_err(|e| ManifestError::Header {
        path: path.display().to_string(),
        reason: format!("bad header: {e}"),
    })?;
    if &header != identity {
        return Err(ManifestError::Header {
            path: path.display().to_string(),
            reason: "belongs to a different sweep (header mismatch); \
                     delete it to start fresh"
                .into(),
        });
    }
    let mut records = Vec::new();
    let tail = lines.split_off(1);
    let n = tail.len();
    for (i, line) in tail.into_iter().enumerate() {
        let is_last = i + 1 == n;
        match parse_record_line(line) {
            Ok(rec) => records.push(rec),
            Err(_) if is_last && !last_complete => break, // killed mid-write
            Err((true, _, expected, actual)) => {
                return Err(ManifestError::ChecksumMismatch {
                    path: path.display().to_string(),
                    line: i + 2,
                    expected,
                    actual,
                })
            }
            Err((false, reason, ..)) => {
                return Err(ManifestError::CorruptRecord {
                    path: path.display().to_string(),
                    line: i + 2,
                    reason,
                })
            }
        }
    }
    Ok(combine(&records, &[]))
}

/// Builds the merged sweep document from a complete cell set.
///
/// Cells are emitted in canonical job order inside their shard sections,
/// so the bytes depend only on the spec and the cell data — never on
/// worker count, execution order, or resume history.
///
/// # Errors
///
/// Returns an error when a cell is missing, an index is out of range, a
/// recorded cell id contradicts the spec, or a cell holds a non-finite
/// number.
pub fn merge_cells(
    name: &str,
    specs: &[&SweepSpec],
    cells: &[CellRecord],
) -> Result<String, String> {
    let jobs = global_jobs(specs);
    let by_index: BTreeMap<usize, &CellRecord> = {
        let mut m = BTreeMap::new();
        for rec in cells {
            m.entry(rec.index).or_insert(rec);
        }
        m
    };
    let mut shards = Vec::with_capacity(specs.len());
    let mut cursor = 0usize;
    for spec in specs {
        let count = spec.cell_count();
        let mut shard_cells = Vec::with_capacity(count);
        for job in &jobs[cursor..cursor + count] {
            let rec = by_index.get(&job.index).ok_or_else(|| {
                format!(
                    "sweep {name}: cell {} is missing from the merge",
                    job.cell_id()
                )
            })?;
            if rec.cell != job.cell_id() {
                return Err(format!(
                    "sweep {name}: index {} recorded as {:?}, expected {:?}",
                    job.index,
                    rec.cell,
                    job.cell_id()
                ));
            }
            shard_cells.push(Json::Obj(vec![
                ("cell".into(), Json::Str(rec.cell.clone())),
                ("data".into(), rec.data.clone()),
            ]));
        }
        cursor += count;
        let mut members = match spec.to_json() {
            Json::Obj(m) => m,
            _ => unreachable!("spec serializes to an object"),
        };
        members.push(("cells".into(), Json::Arr(shard_cells)));
        shards.push(Json::Obj(members));
    }
    if by_index.len() > jobs.len() {
        return Err(format!(
            "sweep {name}: {} cells for {} jobs",
            by_index.len(),
            jobs.len()
        ));
    }
    Json::Obj(vec![
        ("schema".into(), Json::Str(SWEEP_SCHEMA.into())),
        ("sweep".into(), Json::Str(name.into())),
        ("shards".into(), Json::Arr(shards)),
    ])
    .write()
}

/// How the pending job list is ordered before the pool claims from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOrder {
    /// Canonical spec order.
    InOrder,
    /// A seeded Fisher–Yates shuffle — the determinism tests' proof that
    /// execution order cannot reach the merged bytes.
    Shuffled(u64),
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads for the job pool (`0` = auto, `1` = serial).
    pub workers: usize,
    /// Manifest file for streaming completion records; `None` disables
    /// both streaming and resume.
    pub manifest_path: Option<PathBuf>,
    /// Execution order of the pending jobs.
    pub order: JobOrder,
    /// Abort (cleanly) after this many *newly executed* cells — the
    /// kill half of the kill/resume tests and the CI smoke step.
    pub stop_after: Option<usize>,
    /// Telemetry handle: per-cell `sweep.runs.<cell>` counters plus
    /// aggregate executed/skipped counters and timing gauges.
    pub telemetry: Telemetry,
    /// Per-cell progress lines on stderr.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            manifest_path: None,
            order: JobOrder::InOrder,
            stop_after: None,
            telemetry: Telemetry::null(),
            progress: false,
        }
    }
}

/// What a sweep run produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The merged document — `Some` only when every cell is complete
    /// (i.e. the run was not aborted by `stop_after`).
    pub merged: Option<String>,
    /// Cells newly executed by this run.
    pub executed: usize,
    /// Cells skipped because the manifest already held them.
    pub skipped: usize,
    /// Total cells in the job list.
    pub total: usize,
}

/// A boxed cell runner: maps a job to its cell data.
pub type CellRunner<'a> = Box<dyn Fn(&SweepJob) -> Result<Json, String> + Sync + 'a>;

/// One shard: a spec plus the runner mapping each job to its cell data.
pub struct Shard<'a> {
    /// The declarative grid.
    pub spec: SweepSpec,
    /// Pure cell runner; must depend only on the job's coordinates.
    pub run: CellRunner<'a>,
}

impl<'a> Shard<'a> {
    /// Builds a shard from a spec and a runner closure.
    pub fn new(
        spec: SweepSpec,
        run: impl Fn(&SweepJob) -> Result<Json, String> + Sync + 'a,
    ) -> Shard<'a> {
        Shard {
            spec,
            run: Box::new(run),
        }
    }
}

/// Runs a single-shard sweep. See [`run_shards`].
///
/// # Errors
///
/// Same contract as [`run_shards`].
pub fn run_sweep(shard: &Shard<'_>, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let name = shard.spec.name.clone();
    run_shards(&name, std::slice::from_ref(shard), opts)
}

/// Runs a sharded sweep: expands every shard's spec into one global job
/// list, skips manifest-complete cells, executes the rest on a
/// work-stealing pool (one live cell per worker — memory stays bounded by
/// the pool size), streams each completion into the manifest, and merges.
///
/// # Errors
///
/// Returns the first cell failure, manifest corruption, or I/O error.
/// Completed cells always remain in the manifest, so a failed or killed
/// sweep resumes where it stopped.
pub fn run_shards(
    name: &str,
    shards: &[Shard<'_>],
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    if shards.is_empty() {
        return Err(format!("sweep {name}: no shards"));
    }
    let mut seen = std::collections::BTreeSet::new();
    for shard in shards {
        shard.spec.validate()?;
        if !seen.insert(&shard.spec.name) {
            return Err(format!(
                "sweep {name}: duplicate shard {:?}",
                shard.spec.name
            ));
        }
    }
    let specs: Vec<&SweepSpec> = shards.iter().map(|s| &s.spec).collect();
    let jobs = global_jobs(&specs);
    let total = jobs.len();
    let identity = manifest_identity(name, &specs);

    // Resume: cells the manifest already holds are never re-executed.
    let mut completed: BTreeMap<usize, CellRecord> = BTreeMap::new();
    if let Some(path) = &opts.manifest_path {
        for rec in load_manifest(path, &identity).map_err(|e| e.to_string())? {
            let job = jobs.get(rec.index).ok_or_else(|| {
                format!(
                    "manifest cell index {} out of range (total {total})",
                    rec.index
                )
            })?;
            if rec.cell != job.cell_id() {
                return Err(format!(
                    "manifest cell {:?} does not match job {:?} at index {}",
                    rec.cell,
                    job.cell_id(),
                    rec.index
                ));
            }
            completed.insert(rec.index, rec);
        }
    }
    let skipped = completed.len();
    let tel = &opts.telemetry;
    tel.gauge_set("sweep.cells_total", total as f64);
    tel.counter_add("sweep.skipped", skipped as u64);

    let mut manifest = match &opts.manifest_path {
        Some(path) => Some(open_manifest(path, &identity, skipped > 0)?),
        None => None,
    };

    // Which shard owns a global index (for runner dispatch).
    let mut owner = Vec::with_capacity(total);
    for (s, spec) in specs.iter().enumerate() {
        owner.extend(std::iter::repeat_n(s, spec.cell_count()));
    }

    let mut pending: Vec<&SweepJob> = jobs
        .iter()
        .filter(|j| !completed.contains_key(&j.index))
        .collect();
    if let JobOrder::Shuffled(seed) = opts.order {
        shuffle(&mut pending, seed);
    }

    let mut executed = 0usize;
    let mut aborted = false;
    let mut failure: Option<String> = None;
    let budget = opts.stop_after.unwrap_or(usize::MAX);
    par_map_streamed(
        pending.len(),
        opts.workers,
        |k| {
            let job = pending[k];
            ((shards[owner[job.index]].run)(job)).map(|data| CellRecord {
                index: job.index,
                cell: job.cell_id(),
                data,
            })
        },
        |_, result| {
            let rec = match result {
                Ok(rec) => rec,
                Err(e) => {
                    failure = Some(e);
                    return false;
                }
            };
            if let Some(file) = manifest.as_mut() {
                if let Err(e) = append_record(file, &rec) {
                    failure = Some(e);
                    return false;
                }
            }
            executed += 1;
            tel.counter_add("sweep.executed", 1);
            tel.counter_add(&format!("sweep.runs.{}", rec.cell), 1);
            if opts.progress {
                eprintln!("[sweep {name}] {}/{total} {}", skipped + executed, rec.cell);
            }
            completed.insert(rec.index, rec);
            if executed >= budget {
                aborted = true;
                return false;
            }
            true
        },
    );
    if let Some(e) = failure {
        return Err(e);
    }

    let merged = if aborted {
        None
    } else {
        let cells: Vec<CellRecord> = completed.into_values().collect();
        Some(merge_cells(name, &specs, &cells)?)
    };
    Ok(SweepOutcome {
        merged,
        executed,
        skipped,
        total,
    })
}

/// Concatenates every spec's jobs into one list with global indices.
fn global_jobs(specs: &[&SweepSpec]) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for spec in specs {
        for mut job in spec.jobs() {
            job.index = jobs.len();
            jobs.push(job);
        }
    }
    jobs
}

/// Opens the manifest for appending, writing the identity header when the
/// file is new (or was empty).
fn open_manifest(path: &Path, identity: &Json, has_records: bool) -> Result<std::fs::File, String> {
    let existed = std::fs::metadata(path)
        .map(|m| m.len() > 0)
        .unwrap_or(false);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open manifest {}: {e}", path.display()))?;
    debug_assert!(existed || !has_records, "records without a header");
    if !existed {
        let mut line = identity.write()?;
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write manifest header: {e}"))?;
    }
    Ok(file)
}

/// Appends one completed, checksummed cell line and flushes, so a kill
/// loses at most the line being written (which [`load_manifest`]
/// tolerates).
fn append_record(file: &mut std::fs::File, rec: &CellRecord) -> Result<(), String> {
    let mut line = record_line(rec)?;
    line.push('\n');
    file.write_all(line.as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| format!("cannot append to manifest: {e}"))
}

/// Seeded Fisher–Yates over the pending jobs (SplitMix64 stream).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new("demo")
            .axis("mode", ["a", "b"])
            .axis("seed", ["1", "2", "3"])
    }

    fn runner(job: &SweepJob) -> Result<Json, String> {
        let mode = job.value("mode").unwrap().to_owned();
        let seed: f64 = job.value("seed").unwrap().parse().unwrap();
        Ok(Json::Obj(vec![
            ("mode".into(), Json::Str(mode)),
            ("seed_sq".into(), Json::Num(seed * seed)),
        ]))
    }

    #[test]
    fn expansion_is_row_major_with_stable_ids() {
        let jobs = spec().jobs();
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].cell_id(), "demo:mode=a/seed=1");
        assert_eq!(jobs[1].cell_id(), "demo:mode=a/seed=2");
        assert_eq!(jobs[3].cell_id(), "demo:mode=b/seed=1");
        assert_eq!(jobs[5].cell_id(), "demo:mode=b/seed=3");
        assert_eq!(jobs[4].value("seed"), Some("2"));
        assert_eq!(jobs[4].value("nope"), None);
    }

    #[test]
    fn validation_rejects_structural_problems() {
        assert!(SweepSpec::new("x").validate().is_err()); // no axes
        assert!(SweepSpec::new("").axis("a", ["1"]).validate().is_err());
        assert!(SweepSpec::new("x")
            .axis("a", Vec::<String>::new())
            .validate()
            .is_err());
        assert!(SweepSpec::new("x")
            .axis("a", ["1", "1"])
            .validate()
            .is_err());
        assert!(SweepSpec::new("x")
            .axis("a", ["1"])
            .axis("a", ["2"])
            .validate()
            .is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn merged_bytes_identical_across_workers_and_order() {
        let shard = Shard::new(spec(), runner);
        let base = run_sweep(&shard, &SweepOptions::default())
            .unwrap()
            .merged
            .unwrap();
        for (workers, order) in [
            (1, JobOrder::InOrder),
            (2, JobOrder::InOrder),
            (8, JobOrder::Shuffled(99)),
        ] {
            let opts = SweepOptions {
                workers,
                order,
                ..SweepOptions::default()
            };
            let out = run_sweep(&shard, &opts).unwrap();
            assert_eq!(out.merged.as_deref(), Some(base.as_str()));
            assert_eq!((out.executed, out.skipped, out.total), (6, 0, 6));
        }
        // The merged document is valid JSON and a re-encode fixed point.
        let v = jsonio::parse(&base).unwrap();
        assert_eq!(v.write().unwrap(), base);
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(SWEEP_SCHEMA));
    }

    #[test]
    fn cell_failure_propagates() {
        let shard = Shard::new(spec(), |job| {
            if job.value("seed") == Some("2") {
                Err("boom".into())
            } else {
                runner(job)
            }
        });
        let err = run_sweep(&shard, &SweepOptions::default()).unwrap_err();
        assert!(err.contains("boom"));
    }

    #[test]
    fn merge_rejects_missing_and_mismatched_cells() {
        let s = spec();
        let specs = [&s];
        let jobs = global_jobs(&specs);
        let mut cells: Vec<CellRecord> = jobs
            .iter()
            .map(|j| CellRecord {
                index: j.index,
                cell: j.cell_id(),
                data: Json::Num(j.index as f64),
            })
            .collect();
        assert!(merge_cells("demo", &specs, &cells).is_ok());
        let gone = cells.pop().unwrap();
        assert!(merge_cells("demo", &specs, &cells)
            .unwrap_err()
            .contains("missing"));
        cells.push(CellRecord {
            cell: "demo:wrong=id".into(),
            ..gone
        });
        assert!(merge_cells("demo", &specs, &cells)
            .unwrap_err()
            .contains("expected"));
    }

    #[test]
    fn combine_dedupes_and_sorts() {
        let rec = |i: usize| CellRecord {
            index: i,
            cell: format!("c{i}"),
            data: Json::Num(i as f64),
        };
        let merged = combine(&[rec(3), rec(1)], &[rec(1), rec(0)]);
        let indices: Vec<usize> = merged.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 3]);
    }

    #[test]
    fn record_lines_carry_verifiable_checksums() {
        let rec = CellRecord {
            index: 3,
            cell: "demo:mode=a/seed=1".into(),
            data: Json::Num(42.0),
        };
        let line = record_line(&rec).unwrap();
        assert!(line.contains("\"crc\""));
        assert_eq!(parse_record_line(&line).unwrap(), rec);
        // A record without a crc member (the /1 format) is rejected.
        let legacy = rec.to_json().write().unwrap();
        assert!(matches!(parse_record_line(&legacy), Err((false, ..))));
    }

    #[test]
    fn interior_bit_rot_is_pinpointed_with_a_typed_error() {
        let dir = std::env::temp_dir().join("eecs_sweep_rot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        let s = spec();
        let identity = manifest_identity("demo", &[&s]);

        let mut text = identity.write().unwrap();
        text.push('\n');
        let mut lines = Vec::new();
        for (i, job) in s.jobs().iter().take(3).enumerate() {
            lines.push(
                record_line(&CellRecord {
                    index: job.index,
                    cell: job.cell_id(),
                    data: Json::Num(i as f64),
                })
                .unwrap(),
            );
        }
        // Rot one byte of the middle record's payload: the value 1.0
        // becomes 7.0, every line still parses as JSON.
        lines[1] = lines[1].replacen("1", "7", 1);
        text.push_str(&lines.join("\n"));
        text.push('\n');
        std::fs::write(&path, &text).unwrap();

        let err = load_manifest(&path, &identity).unwrap_err();
        match err {
            ManifestError::ChecksumMismatch { line, .. } => assert_eq!(line, 3),
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("line 3"));
        assert!(err.to_string().contains("bit-rot"));

        // A torn *final* line is still tolerated (kill mid-write).
        let mut torn = identity.write().unwrap();
        torn.push('\n');
        torn.push_str(&lines[0]);
        torn.push('\n');
        torn.push_str(&lines[2][..lines[2].len() / 2]);
        std::fs::write(&path, &torn).unwrap();
        let records = load_manifest(&path, &identity).unwrap();
        assert_eq!(records.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        shuffle(&mut a, 7);
        shuffle(&mut b, 7);
        assert_eq!(a, b);
        assert_ne!(a, (0..20).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
