//! Property-based tests for the vision substrate.

use eecs_vision::gradient::GradientField;
use eecs_vision::hog::{pooled_hog, HogConfig, HogDescriptor};
use eecs_vision::image::{GrayImage, RgbImage};
use eecs_vision::integral::IntegralImage;
use eecs_vision::resize::{box_downsample, resize_gray};
use proptest::prelude::*;

fn gray_strategy(w: usize, h: usize) -> impl Strategy<Value = GrayImage> {
    prop::collection::vec(0.0..1.0f32, w * h).prop_map(move |v| GrayImage::from_vec(w, h, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn integral_box_sums_match_naive(img in gray_strategy(12, 9)) {
        let ii = IntegralImage::build(&img);
        for (x0, y0, x1, y1) in [(0usize, 0usize, 12usize, 9usize), (3, 2, 7, 8), (5, 5, 6, 6)] {
            let mut naive = 0.0f64;
            for y in y0..y1 {
                for x in x0..x1 {
                    naive += img.get(x, y) as f64;
                }
            }
            prop_assert!((ii.box_sum(x0, y0, x1, y1) - naive).abs() < 1e-4);
        }
    }

    #[test]
    fn box_downsample_preserves_mean(img in gray_strategy(16, 12)) {
        let down = box_downsample(&img, 4).unwrap();
        // Full blocks partition the image, so the means agree exactly.
        prop_assert!((down.mean() - img.mean()).abs() < 1e-5);
    }

    #[test]
    fn resize_bounds_pixels(img in gray_strategy(10, 10)) {
        let up = resize_gray(&img, 23, 17).unwrap();
        // Bilinear interpolation cannot exceed the input range.
        for &p in up.as_slice() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&(p as f64)));
        }
    }

    #[test]
    fn gradient_orientation_always_in_range(img in gray_strategy(9, 9)) {
        let g = GradientField::compute(&img);
        for &theta in g.orientation.as_slice() {
            prop_assert!((0.0..std::f32::consts::PI).contains(&theta));
        }
        for &m in g.magnitude.as_slice() {
            prop_assert!(m >= 0.0);
        }
    }

    #[test]
    fn hog_descriptor_blocks_bounded(img in gray_strategy(16, 32)) {
        let cfg = HogConfig { cell_size: 4, block_cells: 2, bins: 9 };
        let d = HogDescriptor::compute(&img, cfg).unwrap();
        prop_assert_eq!(d.len(), cfg.descriptor_len(16, 32).unwrap());
        // L2-normalized blocks: every entry within [0, 1].
        for &v in &d {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn pooled_hog_is_a_distribution_or_zero(img in gray_strategy(20, 20)) {
        let d = pooled_hog(&img, 3, 3, 6).unwrap();
        let sum: f64 = d.iter().sum();
        prop_assert!(d.iter().all(|&v| v >= 0.0));
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grayscale_brightness_monotone(v in 0.0..0.5f32) {
        // Scaling an RGB image up never darkens its gray projection.
        let img = RgbImage::filled(4, 4, [v, v * 0.8, v * 0.5]);
        let mut brighter = img.clone();
        brighter.scale_brightness(1.5);
        prop_assert!(brighter.to_gray().mean() >= img.to_gray().mean() - 1e-6);
    }
}
