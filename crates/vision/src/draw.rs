//! Rasterization helpers used by the synthetic scene renderer.
//!
//! The EPFL/Graz datasets are replaced by rendered scenes (see `eecs-scene`);
//! these primitives draw backgrounds, furniture clutter, and human sprites.

use crate::image::RgbImage;
use rand::rngs::StdRng;
use rand::RngExt;

/// Fills the axis-aligned rectangle `[x0, x1) × [y0, y1)` (clipped to the
/// image) with a constant color.
pub fn fill_rect(img: &mut RgbImage, x0: i64, y0: i64, x1: i64, y1: i64, rgb: [f32; 3]) {
    let (w, h) = (img.width() as i64, img.height() as i64);
    let xa = x0.clamp(0, w);
    let xb = x1.clamp(0, w);
    let ya = y0.clamp(0, h);
    let yb = y1.clamp(0, h);
    for y in ya..yb {
        for x in xa..xb {
            img.set(x as usize, y as usize, rgb);
        }
    }
}

/// Fills an axis-aligned ellipse centered at `(cx, cy)` with semi-axes
/// `(rx, ry)`, clipped to the image.
pub fn fill_ellipse(img: &mut RgbImage, cx: f64, cy: f64, rx: f64, ry: f64, rgb: [f32; 3]) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let (w, h) = (img.width() as i64, img.height() as i64);
    let x0 = ((cx - rx).floor() as i64).clamp(0, w);
    let x1 = ((cx + rx).ceil() as i64).clamp(0, w);
    let y0 = ((cy - ry).floor() as i64).clamp(0, h);
    let y1 = ((cy + ry).ceil() as i64).clamp(0, h);
    for y in y0..y1 {
        for x in x0..x1 {
            let dx = (x as f64 + 0.5 - cx) / rx;
            let dy = (y as f64 + 0.5 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                img.set(x as usize, y as usize, rgb);
            }
        }
    }
}

/// Paints a vertical gradient from `top` color at `y = 0` to `bottom` color
/// at `y = height-1` over the whole image.
pub fn vertical_gradient(img: &mut RgbImage, top: [f32; 3], bottom: [f32; 3]) {
    let h = img.height();
    let w = img.width();
    for y in 0..h {
        let t = if h > 1 {
            y as f32 / (h - 1) as f32
        } else {
            0.0
        };
        let rgb = [
            top[0] + t * (bottom[0] - top[0]),
            top[1] + t * (bottom[1] - top[1]),
            top[2] + t * (bottom[2] - top[2]),
        ];
        for x in 0..w {
            img.set(x, y, rgb);
        }
    }
}

/// Adds zero-mean uniform noise of amplitude `amp` to every channel and
/// clamps back to `[0, 1]`. Deterministic given the RNG state.
pub fn add_noise(img: &mut RgbImage, amp: f32, rng: &mut StdRng) {
    let (w, h) = (img.width(), img.height());
    for y in 0..h {
        for x in 0..w {
            let [r, g, b] = img.get(x, y);
            let n = rng.random_range(-amp..=amp);
            img.set(
                x,
                y,
                [
                    (r + n).clamp(0.0, 1.0),
                    (g + n).clamp(0.0, 1.0),
                    (b + n).clamp(0.0, 1.0),
                ],
            );
        }
    }
}

/// Overlays a horizontally striped texture inside a rectangle — used to give
/// furniture clutter strong gradient structure (the cause of the HOG false
/// positives on dataset #2 in the paper).
#[allow(clippy::too_many_arguments)]
pub fn striped_rect(
    img: &mut RgbImage,
    x0: i64,
    y0: i64,
    x1: i64,
    y1: i64,
    rgb_a: [f32; 3],
    rgb_b: [f32; 3],
    stripe_height: usize,
) {
    let (w, h) = (img.width() as i64, img.height() as i64);
    let sh = stripe_height.max(1) as i64;
    let xa = x0.clamp(0, w);
    let xb = x1.clamp(0, w);
    let ya = y0.clamp(0, h);
    let yb = y1.clamp(0, h);
    for y in ya..yb {
        let band = ((y - y0) / sh) % 2 == 0;
        let rgb = if band { rgb_a } else { rgb_b };
        for x in xa..xb {
            img.set(x as usize, y as usize, rgb);
        }
    }
}

/// Draws a furniture item into the bounding box: three vertically split
/// high-contrast panels (strong vertical edges with a person-like aspect
/// ratio — exactly the structure that fools a cleanly trained HOG template,
/// the cause of the paper's low HOG precision on dataset #2) plus one
/// horizontal shelf seam.
pub fn draw_furniture(
    img: &mut RgbImage,
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    colors: ([f32; 3], [f32; 3]),
) {
    let w = x1 - x0;
    if w < 2.0 || y1 - y0 < 2.0 {
        return;
    }
    let third = w / 3.0;
    fill_rect(
        img,
        x0 as i64,
        y0 as i64,
        (x0 + third) as i64,
        y1 as i64,
        colors.0,
    );
    fill_rect(
        img,
        (x0 + third) as i64,
        y0 as i64,
        (x0 + 2.0 * third) as i64,
        y1 as i64,
        colors.1,
    );
    fill_rect(
        img,
        (x0 + 2.0 * third) as i64,
        y0 as i64,
        x1 as i64,
        y1 as i64,
        colors.0,
    );
    let mid = ((y0 + y1) / 2.0) as i64;
    fill_rect(img, x0 as i64, mid, x1 as i64, mid + 2, [0.08, 0.08, 0.08]);
}

/// Draws a simple human sprite into the bounding box `[x0, x1) × [y0, y1)`:
/// a head ellipse, a torso rectangle in the clothing color, and two legs.
///
/// The sprite is intentionally minimal — what matters for the detectors is
/// that it produces the vertical-edge and head-shoulder gradient structure
/// that real pedestrians produce for HOG/ACF/contour features.
pub fn draw_human(
    img: &mut RgbImage,
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    clothing: [f32; 3],
    skin: [f32; 3],
) {
    let w = x1 - x0;
    let h = y1 - y0;
    if w <= 1.0 || h <= 2.0 {
        return;
    }
    let cx = (x0 + x1) / 2.0;
    // Head: top 1/6 of the box.
    let head_r = (w * 0.22).min(h / 12.0).max(0.6);
    fill_ellipse(img, cx, y0 + h / 12.0, head_r, h / 12.0, skin);
    // Torso: from 1/6 to 3/5 of the height, ~60% of the width.
    fill_rect(
        img,
        (cx - 0.30 * w) as i64,
        (y0 + h / 6.0) as i64,
        (cx + 0.30 * w) as i64,
        (y0 + 0.60 * h) as i64,
        clothing,
    );
    // Arms: thin strips on either side of the torso.
    fill_rect(
        img,
        (cx - 0.45 * w) as i64,
        (y0 + h / 6.0) as i64,
        (cx - 0.32 * w) as i64,
        (y0 + 0.52 * h) as i64,
        clothing,
    );
    fill_rect(
        img,
        (cx + 0.32 * w) as i64,
        (y0 + h / 6.0) as i64,
        (cx + 0.45 * w) as i64,
        (y0 + 0.52 * h) as i64,
        clothing,
    );
    // Legs: two strips from 3/5 down, darker version of the clothing.
    let legs = [clothing[0] * 0.5, clothing[1] * 0.5, clothing[2] * 0.5];
    fill_rect(
        img,
        (cx - 0.25 * w) as i64,
        (y0 + 0.60 * h) as i64,
        (cx - 0.05 * w) as i64,
        y1 as i64,
        legs,
    );
    fill_rect(
        img,
        (cx + 0.05 * w) as i64,
        (y0 + 0.60 * h) as i64,
        (cx + 0.25 * w) as i64,
        y1 as i64,
        legs,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fill_rect_clips_to_image() {
        let mut img = RgbImage::new(4, 4);
        fill_rect(&mut img, -10, -10, 100, 2, [1.0, 0.0, 0.0]);
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.0]);
        assert_eq!(img.get(3, 1), [1.0, 0.0, 0.0]);
        assert_eq!(img.get(0, 2), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn ellipse_center_filled_corner_not() {
        let mut img = RgbImage::new(11, 11);
        fill_ellipse(&mut img, 5.5, 5.5, 4.0, 4.0, [0.0, 1.0, 0.0]);
        assert_eq!(img.get(5, 5), [0.0, 1.0, 0.0]);
        assert_eq!(img.get(0, 0), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn degenerate_ellipse_is_noop() {
        let mut img = RgbImage::new(4, 4);
        fill_ellipse(&mut img, 2.0, 2.0, 0.0, 3.0, [1.0, 1.0, 1.0]);
        assert_eq!(img.get(2, 2), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn gradient_interpolates_endpoints() {
        let mut img = RgbImage::new(2, 5);
        vertical_gradient(&mut img, [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 0), [0.0, 0.0, 0.0]);
        assert_eq!(img.get(0, 4), [1.0, 1.0, 1.0]);
        let mid = img.get(0, 2);
        assert!((mid[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn noise_stays_in_unit_interval() {
        let mut img = RgbImage::filled(8, 8, [0.5, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        add_noise(&mut img, 0.9, &mut rng);
        for y in 0..8 {
            for x in 0..8 {
                for c in img.get(x, y) {
                    assert!((0.0..=1.0).contains(&c));
                }
            }
        }
    }

    #[test]
    fn noise_changes_pixels() {
        let mut img = RgbImage::filled(8, 8, [0.5, 0.5, 0.5]);
        let before = img.clone();
        let mut rng = StdRng::seed_from_u64(2);
        add_noise(&mut img, 0.1, &mut rng);
        assert_ne!(img, before);
    }

    #[test]
    fn stripes_alternate() {
        let mut img = RgbImage::new(4, 8);
        striped_rect(&mut img, 0, 0, 4, 8, [1.0, 1.0, 1.0], [0.0, 0.0, 0.0], 2);
        assert_eq!(img.get(0, 0), [1.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 2), [0.0, 0.0, 0.0]);
        assert_eq!(img.get(0, 4), [1.0, 1.0, 1.0]);
    }

    #[test]
    fn human_sprite_touches_torso_and_head() {
        let mut img = RgbImage::new(32, 64);
        draw_human(
            &mut img,
            4.0,
            2.0,
            28.0,
            62.0,
            [0.2, 0.2, 0.9],
            [0.9, 0.7, 0.6],
        );
        // Torso center should be clothing-colored.
        assert_eq!(img.get(16, 25), [0.2, 0.2, 0.9]);
        // Head region should be skin-colored near the top center.
        assert_eq!(img.get(16, 6), [0.9, 0.7, 0.6]);
        // Far corner untouched.
        assert_eq!(img.get(0, 63), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn tiny_human_box_is_noop() {
        let mut img = RgbImage::new(8, 8);
        draw_human(
            &mut img,
            1.0,
            1.0,
            1.5,
            2.0,
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        );
        assert_eq!(img, RgbImage::new(8, 8));
    }
}
