//! Bilinear image resampling.

use crate::image::{GrayImage, RgbImage};
use crate::{Result, VisionError};

/// Resizes a grayscale image to `(new_w, new_h)` with bilinear
/// interpolation.
///
/// # Errors
///
/// Returns [`VisionError::InvalidArgument`] if either target dimension is
/// zero or the source image is empty.
pub fn resize_gray(src: &GrayImage, new_w: usize, new_h: usize) -> Result<GrayImage> {
    if new_w == 0 || new_h == 0 {
        return Err(VisionError::InvalidArgument(
            "target dimensions must be positive".into(),
        ));
    }
    if src.width() == 0 || src.height() == 0 {
        return Err(VisionError::InvalidArgument("empty source image".into()));
    }
    // Identity resize is exact under center-aligned bilinear sampling
    // (fx = x, so every tap lands on the source pixel): skip the sampling
    // loop entirely.
    if new_w == src.width() && new_h == src.height() {
        return Ok(src.clone());
    }
    let sx = src.width() as f32 / new_w as f32;
    let sy = src.height() as f32 / new_h as f32;
    // Sample positions depend on one axis each; computing them once per
    // row/column instead of per pixel keeps the inner loop to the four
    // taps. Same arithmetic as the per-pixel form, so outputs are
    // bit-identical.
    let xs: Vec<f32> = (0..new_w).map(|x| (x as f32 + 0.5) * sx - 0.5).collect();
    let mut data = Vec::with_capacity(new_w * new_h);
    for y in 0..new_h {
        let fy = (y as f32 + 0.5) * sy - 0.5;
        for &fx in &xs {
            data.push(bilinear(src, fx, fy));
        }
    }
    Ok(GrayImage::from_vec(new_w, new_h, data))
}

/// Resizes an RGB image channel-wise.
///
/// # Errors
///
/// Same conditions as [`resize_gray`].
pub fn resize_rgb(src: &RgbImage, new_w: usize, new_h: usize) -> Result<RgbImage> {
    Ok(RgbImage {
        r: resize_gray(&src.r, new_w, new_h)?,
        g: resize_gray(&src.g, new_w, new_h)?,
        b: resize_gray(&src.b, new_w, new_h)?,
    })
}

/// Downsamples by integer factor `shrink` using box averaging — the
/// aggregation step of ACF ("aggregated channel features").
///
/// Trailing pixels that do not fill a complete `shrink × shrink` block are
/// dropped, matching Dollár's implementation.
///
/// # Errors
///
/// Returns [`VisionError::InvalidArgument`] for `shrink == 0` and
/// [`VisionError::TooSmall`] if the image is smaller than one block.
pub fn box_downsample(src: &GrayImage, shrink: usize) -> Result<GrayImage> {
    if shrink == 0 {
        return Err(VisionError::InvalidArgument(
            "shrink must be positive".into(),
        ));
    }
    let out_w = src.width() / shrink;
    let out_h = src.height() / shrink;
    if out_w == 0 || out_h == 0 {
        return Err(VisionError::TooSmall(format!(
            "{}x{} with shrink {}",
            src.width(),
            src.height(),
            shrink
        )));
    }
    let norm = 1.0 / (shrink * shrink) as f32;
    Ok(GrayImage::from_fn(out_w, out_h, |x, y| {
        let mut sum = 0.0;
        for dy in 0..shrink {
            for dx in 0..shrink {
                sum += src.get(x * shrink + dx, y * shrink + dy);
            }
        }
        sum * norm
    }))
}

fn bilinear(src: &GrayImage, fx: f32, fy: f32) -> f32 {
    let x0 = fx.floor() as isize;
    let y0 = fy.floor() as isize;
    let tx = fx - x0 as f32;
    let ty = fy - y0 as f32;
    let p00 = src.get_clamped(x0, y0);
    let p10 = src.get_clamped(x0 + 1, y0);
    let p01 = src.get_clamped(x0, y0 + 1);
    let p11 = src.get_clamped(x0 + 1, y0 + 1);
    let top = p00 + tx * (p10 - p00);
    let bot = p01 + tx * (p11 - p01);
    top + ty * (bot - top)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_preserves_pixels() {
        let src = GrayImage::from_fn(5, 4, |x, y| (x * 7 + y) as f32 / 40.0);
        let out = resize_gray(&src, 5, 4).unwrap();
        for y in 0..4 {
            for x in 0..5 {
                assert!((out.get(x, y) - src.get(x, y)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn constant_image_stays_constant() {
        let src = GrayImage::filled(8, 8, 0.37);
        let out = resize_gray(&src, 3, 13).unwrap();
        for p in out.as_slice() {
            assert!((p - 0.37).abs() < 1e-5);
        }
    }

    #[test]
    fn upscale_preserves_mean_roughly() {
        let src = GrayImage::from_fn(4, 4, |x, _| if x < 2 { 0.0 } else { 1.0 });
        let out = resize_gray(&src, 16, 16).unwrap();
        assert!((out.mean() - src.mean()).abs() < 0.05);
    }

    #[test]
    fn rejects_zero_target() {
        let src = GrayImage::new(4, 4);
        assert!(resize_gray(&src, 0, 4).is_err());
        assert!(resize_gray(&src, 4, 0).is_err());
    }

    #[test]
    fn box_downsample_averages_blocks() {
        let src = GrayImage::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let out = box_downsample(&src, 2).unwrap();
        assert_eq!(out.width(), 1);
        assert!((out.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn box_downsample_drops_partial_blocks() {
        let src = GrayImage::filled(5, 5, 1.0);
        let out = box_downsample(&src, 2).unwrap();
        assert_eq!((out.width(), out.height()), (2, 2));
    }

    #[test]
    fn box_downsample_rejects_degenerate() {
        let src = GrayImage::filled(3, 3, 1.0);
        assert!(box_downsample(&src, 0).is_err());
        assert!(box_downsample(&src, 4).is_err());
    }

    #[test]
    fn rgb_resize_channels_independent() {
        let mut src = RgbImage::new(2, 2);
        src.set(0, 0, [1.0, 0.0, 0.5]);
        src.set(1, 0, [1.0, 0.0, 0.5]);
        src.set(0, 1, [1.0, 0.0, 0.5]);
        src.set(1, 1, [1.0, 0.0, 0.5]);
        let out = resize_rgb(&src, 4, 4).unwrap();
        let px = out.get(2, 2);
        assert!((px[0] - 1.0).abs() < 1e-5);
        assert!(px[1].abs() < 1e-5);
        assert!((px[2] - 0.5).abs() < 1e-5);
    }
}
