//! Bag of visual words.
//!
//! Section V-A of the paper: keypoint descriptors from the training feeds
//! are clustered into a 400-word vocabulary; any image is then represented
//! by the histogram of its keypoints' nearest visual words, a fixed-length
//! vector regardless of image size or keypoint count.

use crate::image::GrayImage;
use crate::keypoint::{detect_keypoints, Keypoint, KeypointConfig};
use crate::{Result, VisionError};
use eecs_learn::kmeans::{KMeans, KMeansConfig};

/// Re-export of the keypoint descriptor dimension for convenience.
pub const BOW_DESCRIPTOR_DIM: usize = crate::keypoint::DESCRIPTOR_DIM;

/// A fitted visual-word vocabulary.
#[derive(Debug, Clone)]
pub struct BowVocabulary {
    kmeans: KMeans,
    keypoint_config: KeypointConfig,
}

impl BowVocabulary {
    /// Builds a `words`-word vocabulary from descriptors harvested from the
    /// `training_images` (the paper uses 12 training feeds → 400 words).
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidArgument`] when no descriptors can be
    /// harvested or `words` is zero / exceeds the descriptor count.
    pub fn build(
        training_images: &[GrayImage],
        words: usize,
        keypoint_config: KeypointConfig,
        seed: u64,
    ) -> Result<BowVocabulary> {
        let mut descriptors: Vec<Vec<f64>> = Vec::new();
        for img in training_images {
            if let Ok(kps) = detect_keypoints(img, &keypoint_config) {
                descriptors.extend(kps.into_iter().map(|k| k.descriptor));
            }
        }
        if descriptors.is_empty() {
            return Err(VisionError::InvalidArgument(
                "no keypoints found in training images".into(),
            ));
        }
        let kmeans = KMeans::fit(
            &descriptors,
            &KMeansConfig {
                k: words,
                seed,
                ..Default::default()
            },
        )
        .map_err(|e| VisionError::InvalidArgument(format!("k-means failed: {e}")))?;
        Ok(BowVocabulary {
            kmeans,
            keypoint_config,
        })
    }

    /// Number of visual words.
    pub fn words(&self) -> usize {
        self.kmeans.k()
    }

    /// Quantizes pre-extracted keypoints into an L1-normalized word
    /// histogram (all-zero when `keypoints` is empty).
    pub fn histogram_of(&self, keypoints: &[Keypoint]) -> Vec<f64> {
        let mut hist = vec![0.0f64; self.words()];
        for kp in keypoints {
            hist[self.kmeans.assign(&kp.descriptor)] += 1.0;
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }

    /// Detects keypoints in `img` and returns its word histogram — the
    /// fixed-length BoW representation of Section V-A.
    ///
    /// Images where detection fails (e.g. too small) yield the all-zero
    /// histogram rather than an error, mirroring how an empty frame is
    /// handled in the pipeline.
    pub fn represent(&self, img: &GrayImage) -> Vec<f64> {
        match detect_keypoints(img, &self.keypoint_config) {
            Ok(kps) => self.histogram_of(&kps),
            Err(_) => vec![0.0; self.words()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;
    use crate::image::RgbImage;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn textured_image(seed: u64) -> GrayImage {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rgb = RgbImage::new(64, 64);
        for _ in 0..12 {
            let cx = rng.random_range(10.0..54.0);
            let cy = rng.random_range(10.0..54.0);
            let r = rng.random_range(1.5..4.0);
            let c = rng.random_range(0.5..1.0f32);
            draw::fill_ellipse(&mut rgb, cx, cy, r, r, [c, c, c]);
        }
        rgb.to_gray()
    }

    fn vocab() -> BowVocabulary {
        let imgs: Vec<GrayImage> = (0..4).map(textured_image).collect();
        BowVocabulary::build(&imgs, 8, KeypointConfig::default(), 1).unwrap()
    }

    #[test]
    fn histogram_is_l1_normalized() {
        let v = vocab();
        let hist = v.represent(&textured_image(99));
        let sum: f64 = hist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
        assert_eq!(hist.len(), 8);
    }

    #[test]
    fn empty_image_gives_zero_histogram() {
        let v = vocab();
        let hist = v.represent(&GrayImage::filled(64, 64, 0.5));
        assert!(hist.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn tiny_image_gives_zero_histogram_not_error() {
        let v = vocab();
        let hist = v.represent(&GrayImage::new(4, 4));
        assert_eq!(hist.len(), 8);
        assert!(hist.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn same_image_same_histogram() {
        let v = vocab();
        let img = textured_image(5);
        assert_eq!(v.represent(&img), v.represent(&img));
    }

    #[test]
    fn build_requires_keypoints() {
        let blank = vec![GrayImage::filled(64, 64, 0.5)];
        assert!(BowVocabulary::build(&blank, 8, KeypointConfig::default(), 0).is_err());
    }

    #[test]
    fn build_rejects_too_many_words() {
        let imgs = vec![textured_image(0)];
        // Asking for far more words than harvested descriptors fails.
        assert!(BowVocabulary::build(&imgs, 100_000, KeypointConfig::default(), 0).is_err());
    }
}
