//! From-scratch computer-vision substrate for the EECS reproduction.
//!
//! The paper (Section V) builds its pipeline out of OpenCV primitives; this
//! crate re-implements everything those primitives provided:
//!
//! * [`image`] — planar RGB / grayscale float images,
//! * [`draw`] — the rasterization helpers used by the synthetic scene
//!   renderer (`eecs-scene`),
//! * [`resize`] — bilinear resampling (C4 resizes its input to a fixed
//!   internal resolution; feature pyramids downscale octaves),
//! * [`integral`] — summed-area tables for box filters,
//! * [`gradient`] — Sobel gradients, magnitude and orientation,
//! * [`hog`] — histograms of oriented gradients (Dalal–Triggs layout,
//!   Section V-A: the 3780-d window descriptor),
//! * [`channels`] — aggregated channel features for the ACF detector,
//! * [`keypoint`] — a Hessian-based keypoint detector with 64-d descriptors
//!   standing in for SURF,
//! * [`bow`] — the bag-of-visual-words quantizer (400-word vocabulary in the
//!   paper),
//! * [`color`] — mean-color features of detected regions (40-d in the
//!   paper), used for cross-camera re-identification.

pub mod bow;
pub mod channels;
pub mod color;
pub mod draw;
pub mod gradient;
pub mod hog;
pub mod image;
pub mod integral;
pub mod keypoint;
pub mod resize;

pub use bow::{BowVocabulary, BOW_DESCRIPTOR_DIM};
pub use gradient::GradientField;
pub use hog::{HogConfig, HogDescriptor};
pub use image::{GrayImage, RgbImage};
pub use integral::IntegralImage;
pub use keypoint::{Keypoint, KeypointConfig};

use std::error::Error;
use std::fmt;

/// Errors produced by the vision substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VisionError {
    /// An image or window was too small for the requested operation.
    TooSmall(String),
    /// An argument was out of the valid domain.
    InvalidArgument(String),
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::TooSmall(msg) => write!(f, "input too small: {msg}"),
            VisionError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for VisionError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, VisionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(VisionError::TooSmall("1x1".into())
            .to_string()
            .contains("1x1"));
    }
}
