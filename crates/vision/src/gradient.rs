//! Image gradients: Sobel filters, magnitude and orientation.

use crate::image::GrayImage;

/// Per-pixel gradient magnitude and orientation of an image.
///
/// Orientation is *unsigned* (mapped into `[0, π)`), the convention used by
/// both HOG and ACF channel features.
#[derive(Debug, Clone)]
pub struct GradientField {
    /// Gradient magnitude per pixel.
    pub magnitude: GrayImage,
    /// Unsigned orientation per pixel, radians in `[0, π)`.
    pub orientation: GrayImage,
}

impl GradientField {
    /// Computes Sobel gradients of `img` with clamp-to-edge borders.
    pub fn compute(img: &GrayImage) -> GradientField {
        let w = img.width();
        let h = img.height();
        let mut magnitude = GrayImage::new(w, h);
        let mut orientation = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let (gx, gy) = sobel_at(img, x as isize, y as isize);
                let mag = (gx * gx + gy * gy).sqrt();
                let mut theta = (gy).atan2(gx); // [-π, π]
                if theta < 0.0 {
                    theta += std::f32::consts::PI; // unsigned: [0, π)
                }
                if theta >= std::f32::consts::PI {
                    theta -= std::f32::consts::PI;
                }
                magnitude.set(x, y, mag);
                orientation.set(x, y, theta);
            }
        }
        GradientField {
            magnitude,
            orientation,
        }
    }

    /// Quantizes the orientation at `(x, y)` into one of `bins` equal
    /// sectors of `[0, π)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the coordinates are out of bounds.
    pub fn orientation_bin(&self, x: usize, y: usize, bins: usize) -> usize {
        assert!(bins > 0, "bins must be positive");
        let theta = self.orientation.get(x, y);
        let bin = (theta / std::f32::consts::PI * bins as f32) as usize;
        bin.min(bins - 1)
    }
}

/// Sobel response at a pixel, clamped borders. Returns `(gx, gy)`.
fn sobel_at(img: &GrayImage, x: isize, y: isize) -> (f32, f32) {
    let p = |dx: isize, dy: isize| img.get_clamped(x + dx, y + dy);
    let gx = (p(1, -1) + 2.0 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1));
    let gy = (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1));
    (gx, gy)
}

/// Sum of gradient magnitude over the whole image — a cheap "edge energy"
/// statistic used by scene-difference heuristics.
pub fn edge_energy(img: &GrayImage) -> f64 {
    let g = GradientField::compute(img);
    g.magnitude.as_slice().iter().map(|&m| m as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_has_zero_gradient() {
        let img = GrayImage::filled(8, 8, 0.4);
        let g = GradientField::compute(&img);
        assert!(g.magnitude.as_slice().iter().all(|&m| m.abs() < 1e-6));
    }

    #[test]
    fn vertical_edge_has_horizontal_gradient() {
        // Left half dark, right half bright → gradient along x (θ ≈ 0).
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let g = GradientField::compute(&img);
        // At the edge column the magnitude is large...
        assert!(g.magnitude.get(4, 4) > 1.0);
        // ...and the orientation is near 0 or π (unsigned horizontal).
        let theta = g.orientation.get(4, 4);
        assert!(
            !(0.2..=std::f32::consts::PI - 0.2).contains(&theta),
            "theta={theta}"
        );
    }

    #[test]
    fn horizontal_edge_has_vertical_gradient() {
        let img = GrayImage::from_fn(8, 8, |_, y| if y < 4 { 0.0 } else { 1.0 });
        let g = GradientField::compute(&img);
        let theta = g.orientation.get(4, 4);
        assert!(
            (theta - std::f32::consts::FRAC_PI_2).abs() < 0.2,
            "theta={theta}"
        );
    }

    #[test]
    fn orientation_in_range() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 3 + y * 7) % 5) as f32 / 5.0);
        let g = GradientField::compute(&img);
        for &theta in g.orientation.as_slice() {
            assert!((0.0..std::f32::consts::PI).contains(&theta));
        }
    }

    #[test]
    fn orientation_bins_cover_all_indices() {
        let img = GrayImage::from_fn(8, 8, |x, y| if x + y < 8 { 0.0 } else { 1.0 });
        let g = GradientField::compute(&img);
        for y in 0..8 {
            for x in 0..8 {
                let b = g.orientation_bin(x, y, 6);
                assert!(b < 6);
            }
        }
    }

    #[test]
    fn diagonal_edge_in_diagonal_bin() {
        // Anti-diagonal edge: gradient direction 45°, bin index ~ bins/4.
        let img = GrayImage::from_fn(16, 16, |x, y| if x + y < 16 { 0.0 } else { 1.0 });
        let g = GradientField::compute(&img);
        let b = g.orientation_bin(8, 8, 4);
        assert_eq!(b, 1, "45° should fall in the second of four bins");
    }

    #[test]
    fn edge_energy_orders_images() {
        let flat = GrayImage::filled(16, 16, 0.5);
        let busy = GrayImage::from_fn(16, 16, |x, _| (x % 2) as f32);
        assert!(edge_energy(&busy) > edge_energy(&flat));
    }
}
