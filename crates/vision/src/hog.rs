//! Histograms of oriented gradients (Dalal–Triggs).
//!
//! Section V-A of the paper uses a 3780-dimension HOG descriptor per
//! detection window (64×128 window, 8×8 cells, 2×2-cell blocks, 9 bins).
//! This module reproduces that layout and additionally exposes a pooled
//! variant used as part of the per-frame video-comparison feature.

use crate::gradient::GradientField;
use crate::image::GrayImage;
use crate::{Result, VisionError};

/// HOG layout parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HogConfig {
    /// Cell side in pixels.
    pub cell_size: usize,
    /// Block side in cells (blocks overlap with stride of one cell).
    pub block_cells: usize,
    /// Number of unsigned orientation bins.
    pub bins: usize,
}

impl Default for HogConfig {
    /// The Dalal–Triggs parameters used in the paper.
    fn default() -> Self {
        HogConfig {
            cell_size: 8,
            block_cells: 2,
            bins: 9,
        }
    }
}

impl HogConfig {
    /// Descriptor length for a `w × h` pixel window.
    ///
    /// Returns `None` when the window does not contain at least one block.
    pub fn descriptor_len(&self, w: usize, h: usize) -> Option<usize> {
        let cx = w / self.cell_size;
        let cy = h / self.cell_size;
        if cx < self.block_cells || cy < self.block_cells {
            return None;
        }
        let bx = cx - self.block_cells + 1;
        let by = cy - self.block_cells + 1;
        Some(bx * by * self.block_cells * self.block_cells * self.bins)
    }
}

/// Per-cell orientation histograms over a full image, from which window
/// descriptors are assembled in O(window size in cells).
///
/// Computing the grid once per frame and slicing it per window is what makes
/// sliding-window HOG detection tractable; the paper's OpenCV detector does
/// the same internally.
#[derive(Debug, Clone)]
pub struct HogCellGrid {
    cells_x: usize,
    cells_y: usize,
    config: HogConfig,
    /// `cells_x * cells_y * bins` histogram values, row-major by cell.
    hist: Vec<f32>,
}

impl HogCellGrid {
    /// Computes cell histograms for the whole image.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::TooSmall`] if the image holds no complete
    /// cell, or [`VisionError::InvalidArgument`] for degenerate configs.
    pub fn compute(img: &GrayImage, config: HogConfig) -> Result<HogCellGrid> {
        if config.cell_size == 0 || config.bins == 0 || config.block_cells == 0 {
            return Err(VisionError::InvalidArgument(
                "cell_size, bins and block_cells must be positive".into(),
            ));
        }
        let cells_x = img.width() / config.cell_size;
        let cells_y = img.height() / config.cell_size;
        if cells_x == 0 || cells_y == 0 {
            return Err(VisionError::TooSmall(format!(
                "{}x{} image with cell size {}",
                img.width(),
                img.height(),
                config.cell_size
            )));
        }
        let grad = GradientField::compute(img);
        let mut hist = vec![0.0f32; cells_x * cells_y * config.bins];
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                let base = (cy * cells_x + cx) * config.bins;
                for dy in 0..config.cell_size {
                    for dx in 0..config.cell_size {
                        let x = cx * config.cell_size + dx;
                        let y = cy * config.cell_size + dy;
                        let mag = grad.magnitude.get(x, y);
                        if mag == 0.0 {
                            continue;
                        }
                        let bin = grad.orientation_bin(x, y, config.bins);
                        hist[base + bin] += mag;
                    }
                }
            }
        }
        Ok(HogCellGrid {
            cells_x,
            cells_y,
            config,
            hist,
        })
    }

    /// Grid width in cells.
    pub fn cells_x(&self) -> usize {
        self.cells_x
    }

    /// Grid height in cells.
    pub fn cells_y(&self) -> usize {
        self.cells_y
    }

    /// The configuration used to build the grid.
    pub fn config(&self) -> HogConfig {
        self.config
    }

    /// Histogram slice of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell coordinates are out of range.
    pub fn cell(&self, cx: usize, cy: usize) -> &[f32] {
        assert!(cx < self.cells_x && cy < self.cells_y, "cell out of range");
        let base = (cy * self.cells_x + cx) * self.config.bins;
        &self.hist[base..base + self.config.bins]
    }

    /// Assembles the block-normalized descriptor of the window whose
    /// top-left cell is `(cx0, cy0)` spanning `cells_w × cells_h` cells.
    ///
    /// Blocks of `block_cells × block_cells` cells slide with single-cell
    /// stride; each block is L2-normalized (Dalal–Triggs "L2-norm" scheme).
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidArgument`] if the window exceeds the
    /// grid or is smaller than one block.
    pub fn window_descriptor(
        &self,
        cx0: usize,
        cy0: usize,
        cells_w: usize,
        cells_h: usize,
    ) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.window_descriptor_into(cx0, cy0, cells_w, cells_h, &mut out)?;
        Ok(out)
    }

    /// [`HogCellGrid::window_descriptor`] writing into a caller-owned
    /// buffer: `out` is cleared and filled with the identical descriptor
    /// values, so sliding-window scans can reuse one allocation across
    /// every window instead of allocating a fresh `Vec` per window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HogCellGrid::window_descriptor`]; on error
    /// `out` is left cleared.
    pub fn window_descriptor_into(
        &self,
        cx0: usize,
        cy0: usize,
        cells_w: usize,
        cells_h: usize,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.clear();
        let b = self.config.block_cells;
        if cells_w < b || cells_h < b {
            return Err(VisionError::InvalidArgument(
                "window smaller than one block".into(),
            ));
        }
        if cx0 + cells_w > self.cells_x || cy0 + cells_h > self.cells_y {
            return Err(VisionError::InvalidArgument(
                "window exceeds the cell grid".into(),
            ));
        }
        let bins = self.config.bins;
        let blocks_x = cells_w - b + 1;
        let blocks_y = cells_h - b + 1;
        out.reserve(blocks_x * blocks_y * b * b * bins);
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let start = out.len();
                for cy in 0..b {
                    for cx in 0..b {
                        let cell = self.cell(cx0 + bx + cx, cy0 + by + cy);
                        out.extend(cell.iter().map(|&v| v as f64));
                    }
                }
                // L2 block normalization.
                let norm: f64 = out[start..].iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 1e-12 {
                    for v in &mut out[start..] {
                        *v /= norm;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Precomputed block-normalized HOG blocks of a whole level.
///
/// [`HogCellGrid::window_descriptor`] normalizes each
/// `block_cells × block_cells` block over its own values only, so a block's
/// normalized vector is independent of the window it appears in — yet the
/// sliding scan recomputes it for every overlapping window that contains
/// it (a block is shared by up to `blocks-per-window` windows at single-cell
/// stride). `HogBlockGrid` materializes every block's normalized vector
/// once; [`HogBlockGrid::window_score`] then folds a linear filter over a
/// window's blocks **in the exact element order and accumulation order of
/// `LinearSvm::score` on the assembled descriptor**, so scores are
/// bit-identical to the assemble-then-dot path while skipping both the
/// per-window allocation and the redundant normalizations.
#[derive(Debug, Clone)]
pub struct HogBlockGrid {
    blocks_x: usize,
    blocks_y: usize,
    block_len: usize,
    config: HogConfig,
    /// `blocks_x * blocks_y * block_len` values, row-major by block.
    data: Vec<f64>,
}

impl HogBlockGrid {
    /// Precomputes every block of `grid`. A grid smaller than one block
    /// yields an empty block grid (0 × 0 blocks), matching the window
    /// positions for which `window_descriptor` would succeed: none.
    pub fn compute(grid: &HogCellGrid) -> HogBlockGrid {
        let b = grid.config.block_cells;
        let bins = grid.config.bins;
        let blocks_x = (grid.cells_x + 1).saturating_sub(b);
        let blocks_y = (grid.cells_y + 1).saturating_sub(b);
        let block_len = b * b * bins;
        let mut data = Vec::with_capacity(blocks_x * blocks_y * block_len);
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let start = data.len();
                for cy in 0..b {
                    for cx in 0..b {
                        let cell = grid.cell(bx + cx, by + cy);
                        data.extend(cell.iter().map(|&v| v as f64));
                    }
                }
                // Identical L2 normalization to `window_descriptor`: the
                // norm is over this block's values only.
                let norm: f64 = data[start..].iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 1e-12 {
                    for v in &mut data[start..] {
                        *v /= norm;
                    }
                }
            }
        }
        HogBlockGrid {
            blocks_x,
            blocks_y,
            block_len,
            config: grid.config,
            data,
        }
    }

    /// Grid width in blocks.
    pub fn blocks_x(&self) -> usize {
        self.blocks_x
    }

    /// Grid height in blocks.
    pub fn blocks_y(&self) -> usize {
        self.blocks_y
    }

    /// Values per block (`block_cells² × bins`).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The layout the blocks were built under.
    pub fn config(&self) -> HogConfig {
        self.config
    }

    /// The normalized vector of the block whose top-left cell is
    /// `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn block(&self, bx: usize, by: usize) -> &[f64] {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        let start = (by * self.blocks_x + bx) * self.block_len;
        &self.data[start..start + self.block_len]
    }

    /// Descriptor length of a `cells_w × cells_h` window, or `None` when
    /// `window_descriptor` would reject the window geometry (smaller than
    /// one block).
    pub fn window_len(&self, cells_w: usize, cells_h: usize) -> Option<usize> {
        let b = self.config.block_cells;
        if cells_w < b || cells_h < b {
            return None;
        }
        Some((cells_w - b + 1) * (cells_h - b + 1) * self.block_len)
    }

    /// `weights · descriptor` of the window whose top-left cell is
    /// `(cx0, cy0)`, without materializing the descriptor.
    ///
    /// Returns `None` exactly when
    /// [`HogCellGrid::window_descriptor`] would fail for the same window
    /// (too small for one block, or exceeding the grid). The dot product
    /// accumulates left-to-right over the same element sequence as
    /// `LinearSvm::score` on the assembled descriptor, so the result is
    /// bit-identical to `dot(weights, window_descriptor(..))`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is shorter than the window descriptor.
    pub fn window_score(
        &self,
        cx0: usize,
        cy0: usize,
        cells_w: usize,
        cells_h: usize,
        weights: &[f64],
    ) -> Option<f64> {
        let b = self.config.block_cells;
        if cells_w < b || cells_h < b {
            return None;
        }
        // `window_descriptor` checks against the cell grid; blocks_x =
        // cells_x - b + 1, so cx0 + cells_w <= cells_x is equivalent to
        // cx0 + (cells_w - b + 1) <= blocks_x.
        let wx = cells_w - b + 1;
        let wy = cells_h - b + 1;
        if cx0 + wx > self.blocks_x || cy0 + wy > self.blocks_y {
            return None;
        }
        assert!(
            weights.len() >= wx * wy * self.block_len,
            "weight vector shorter than the window descriptor"
        );
        let mut acc = 0.0f64;
        let mut w = weights.iter();
        for by in 0..wy {
            for bx in 0..wx {
                for &v in self.block(cx0 + bx, cy0 + by) {
                    // Same fold as `dot`: ((0 + w0·x0) + w1·x1) + …
                    acc += *w.next().expect("length checked above") * v;
                }
            }
        }
        Some(acc)
    }
}

/// Convenience: the full HOG descriptor of a standalone window image (the
/// paper's per-window 3780-d feature when the window is 64×128 with default
/// parameters).
#[derive(Debug, Clone)]
pub struct HogDescriptor;

impl HogDescriptor {
    /// Computes the descriptor of `img` treated as a single window.
    ///
    /// # Errors
    ///
    /// Propagates grid/window errors for undersized images.
    pub fn compute(img: &GrayImage, config: HogConfig) -> Result<Vec<f64>> {
        let grid = HogCellGrid::compute(img, config)?;
        grid.window_descriptor(0, 0, grid.cells_x(), grid.cells_y())
    }
}

/// A pooled, low-dimensional orientation descriptor: the image is divided
/// into a `grid_x × grid_y` grid and each tile contributes a
/// magnitude-weighted `bins`-bin orientation histogram, L1-normalized over
/// the whole vector.
///
/// This is the compact stand-in for the paper's 3780-d HOG component of the
/// 4180-d video-comparison feature (see DESIGN.md, dimensionality note).
///
/// # Errors
///
/// Returns [`VisionError::InvalidArgument`] for zero grid dimensions/bins or
/// [`VisionError::TooSmall`] when the image is smaller than the grid.
pub fn pooled_hog(img: &GrayImage, grid_x: usize, grid_y: usize, bins: usize) -> Result<Vec<f64>> {
    if grid_x == 0 || grid_y == 0 || bins == 0 {
        return Err(VisionError::InvalidArgument(
            "grid dimensions and bins must be positive".into(),
        ));
    }
    if img.width() < grid_x || img.height() < grid_y {
        return Err(VisionError::TooSmall(format!(
            "{}x{} image for {}x{} grid",
            img.width(),
            img.height(),
            grid_x,
            grid_y
        )));
    }
    let grad = GradientField::compute(img);
    let mut out = vec![0.0f64; grid_x * grid_y * bins];
    let w = img.width();
    let h = img.height();
    for y in 0..h {
        let ty = (y * grid_y / h).min(grid_y - 1);
        for x in 0..w {
            let tx = (x * grid_x / w).min(grid_x - 1);
            let mag = grad.magnitude.get(x, y) as f64;
            if mag == 0.0 {
                continue;
            }
            let bin = grad.orientation_bin(x, y, bins);
            out[(ty * grid_x + tx) * bins + bin] += mag;
        }
    }
    let total: f64 = out.iter().sum();
    if total > 1e-12 {
        for v in &mut out {
            *v /= total;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_3780() {
        // 64×128 window, 8-px cells, 2×2 blocks, 9 bins → 7·15·4·9 = 3780.
        let cfg = HogConfig::default();
        assert_eq!(cfg.descriptor_len(64, 128), Some(3780));
    }

    #[test]
    fn descriptor_len_none_for_tiny_window() {
        let cfg = HogConfig::default();
        assert_eq!(cfg.descriptor_len(8, 8), None);
    }

    #[test]
    fn full_descriptor_matches_config_len() {
        let img = GrayImage::from_fn(32, 64, |x, y| ((x ^ y) % 7) as f32 / 7.0);
        let cfg = HogConfig::default();
        let d = HogDescriptor::compute(&img, cfg).unwrap();
        assert_eq!(d.len(), cfg.descriptor_len(32, 64).unwrap());
    }

    #[test]
    fn blocks_are_l2_normalized() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 5) as f32 / 5.0);
        let cfg = HogConfig::default();
        let d = HogDescriptor::compute(&img, cfg).unwrap();
        let block_len = cfg.block_cells * cfg.block_cells * cfg.bins;
        for chunk in d.chunks(block_len) {
            let norm: f64 = chunk.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm < 1.0 + 1e-9, "block norm {norm}");
        }
    }

    #[test]
    fn flat_image_descriptor_is_zero() {
        let img = GrayImage::filled(16, 16, 0.5);
        let d = HogDescriptor::compute(&img, HogConfig::default()).unwrap();
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn window_descriptor_equals_cropped_full_descriptor() {
        // Slicing the grid must give the same histograms as cropping the
        // image (up to boundary gradient effects, so compare an interior
        // window of an image with cell-aligned content).
        let img = GrayImage::from_fn(48, 48, |x, y| ((x / 8 + y / 8) % 2) as f32);
        let cfg = HogConfig::default();
        let grid = HogCellGrid::compute(&img, cfg).unwrap();
        let d = grid.window_descriptor(1, 1, 4, 4).unwrap();
        assert_eq!(d.len(), 3 * 3 * 4 * 9);
    }

    #[test]
    fn vertical_edges_dominate_correct_bin() {
        // Strong vertical stripes → horizontal gradients → θ≈0 → bin 0.
        let img = GrayImage::from_fn(32, 32, |x, _| ((x / 4) % 2) as f32);
        let grid = HogCellGrid::compute(&img, HogConfig::default()).unwrap();
        let mut bins = vec![0.0f32; 9];
        for cy in 0..grid.cells_y() {
            for cx in 0..grid.cells_x() {
                for (b, v) in grid.cell(cx, cy).iter().enumerate() {
                    bins[b] += v;
                }
            }
        }
        let max_bin = bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            max_bin == 0 || max_bin == 8,
            "dominant bin {max_bin}: {bins:?}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        let img = GrayImage::new(16, 16);
        assert!(HogCellGrid::compute(
            &img,
            HogConfig {
                cell_size: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(HogCellGrid::compute(
            &img,
            HogConfig {
                bins: 0,
                ..Default::default()
            }
        )
        .is_err());
        let tiny = GrayImage::new(4, 4);
        assert!(HogCellGrid::compute(&tiny, HogConfig::default()).is_err());
    }

    #[test]
    fn window_bounds_checked() {
        let img = GrayImage::new(32, 32);
        let grid = HogCellGrid::compute(&img, HogConfig::default()).unwrap();
        assert!(grid.window_descriptor(3, 3, 4, 4).is_err()); // exceeds 4-cell grid
        assert!(grid.window_descriptor(0, 0, 1, 1).is_err()); // below block size
    }

    #[test]
    fn pooled_hog_dimension_and_normalization() {
        let img = GrayImage::from_fn(40, 30, |x, y| ((x + y) % 9) as f32 / 9.0);
        let d = pooled_hog(&img, 4, 4, 9).unwrap();
        assert_eq!(d.len(), 4 * 4 * 9);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pooled_hog_flat_image_is_zero_vector() {
        let img = GrayImage::filled(20, 20, 0.3);
        let d = pooled_hog(&img, 2, 2, 6).unwrap();
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pooled_hog_distinguishes_orientations() {
        let vertical = GrayImage::from_fn(32, 32, |x, _| ((x / 4) % 2) as f32);
        let horizontal = GrayImage::from_fn(32, 32, |_, y| ((y / 4) % 2) as f32);
        let dv = pooled_hog(&vertical, 2, 2, 9).unwrap();
        let dh = pooled_hog(&horizontal, 2, 2, 9).unwrap();
        let dist: f64 = dv
            .iter()
            .zip(&dh)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.1, "descriptors should differ, dist={dist}");
    }

    #[test]
    fn window_descriptor_into_matches_allocating_variant() {
        let img = GrayImage::from_fn(40, 56, |x, y| ((x * 3 + y * 7) % 11) as f32 / 11.0);
        let cfg = HogConfig {
            cell_size: 4,
            block_cells: 2,
            bins: 9,
        };
        let grid = HogCellGrid::compute(&img, cfg).unwrap();
        let mut scratch = Vec::new();
        for (cx0, cy0, cw, ch) in [(0, 0, 4, 12), (3, 1, 4, 12), (6, 2, 2, 2)] {
            let fresh = grid.window_descriptor(cx0, cy0, cw, ch).unwrap();
            grid.window_descriptor_into(cx0, cy0, cw, ch, &mut scratch)
                .unwrap();
            assert_eq!(fresh.len(), scratch.len());
            for (a, b) in fresh.iter().zip(&scratch) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Errors clear the buffer and match the allocating variant.
        assert!(grid
            .window_descriptor_into(100, 0, 4, 12, &mut scratch)
            .is_err());
        assert!(scratch.is_empty());
    }

    #[test]
    fn block_grid_blocks_match_single_block_descriptors() {
        let img = GrayImage::from_fn(48, 64, |x, y| ((x ^ (y * 5)) % 13) as f32 / 13.0);
        let cfg = HogConfig {
            cell_size: 4,
            block_cells: 2,
            bins: 9,
        };
        let grid = HogCellGrid::compute(&img, cfg).unwrap();
        let blocks = HogBlockGrid::compute(&grid);
        assert_eq!(blocks.blocks_x(), grid.cells_x() - 1);
        assert_eq!(blocks.blocks_y(), grid.cells_y() - 1);
        for by in 0..blocks.blocks_y() {
            for bx in 0..blocks.blocks_x() {
                let d = grid.window_descriptor(bx, by, 2, 2).unwrap();
                let b = blocks.block(bx, by);
                assert_eq!(d.len(), b.len());
                for (x, y) in d.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn window_score_bit_identical_to_assembled_dot() {
        let img = GrayImage::from_fn(48, 64, |x, y| ((x * y) % 17) as f32 / 17.0);
        let cfg = HogConfig {
            cell_size: 4,
            block_cells: 2,
            bins: 9,
        };
        let grid = HogCellGrid::compute(&img, cfg).unwrap();
        let blocks = HogBlockGrid::compute(&grid);
        let (cw, ch) = (4, 12);
        let len = blocks.window_len(cw, ch).unwrap();
        let weights: Vec<f64> = (0..len)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) / 13.0)
            .collect();
        let dot = |w: &[f64], x: &[f64]| -> f64 { w.iter().zip(x).map(|(a, b)| a * b).sum() };
        for cy0 in 0..grid.cells_y() - ch + 1 {
            for cx0 in 0..grid.cells_x() - cw + 1 {
                let desc = grid.window_descriptor(cx0, cy0, cw, ch).unwrap();
                let want = dot(&weights, &desc);
                let got = blocks.window_score(cx0, cy0, cw, ch, &weights).unwrap();
                assert_eq!(want.to_bits(), got.to_bits(), "window ({cx0},{cy0})");
            }
        }
        // Invalid geometry returns None exactly where window_descriptor errs.
        assert!(blocks.window_score(100, 0, cw, ch, &weights).is_none());
        assert!(blocks.window_score(0, 0, 1, 1, &weights).is_none());
    }

    #[test]
    fn pooled_hog_rejects_bad_args() {
        let img = GrayImage::new(8, 8);
        assert!(pooled_hog(&img, 0, 2, 9).is_err());
        assert!(pooled_hog(&img, 2, 2, 0).is_err());
        assert!(pooled_hog(&img, 16, 16, 9).is_err());
    }
}
