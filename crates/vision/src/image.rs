//! Planar float images.
//!
//! All pixel values are `f32` in `[0, 1]`. The renderer writes RGB images;
//! detectors mostly consume the grayscale projection.

use std::fmt;

/// A single-channel image with `f32` pixels in `[0, 1]`.
#[derive(Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        GrayImage {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from a row-major pixel vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Builds an image pixel-by-pixel from `f(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Raw row-major pixel slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw pixel slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) or reads out of bounds (never: release also panics via
    /// slice indexing) if the coordinates are outside the image.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Pixel at `(x, y)` with clamp-to-edge semantics for signed
    /// coordinates; useful for convolution borders.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }

    /// Sets pixel `(x, y)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the image.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    /// Crops the rectangle `[x0, x0+w) × [y0, y0+h)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> GrayImage {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        GrayImage::from_fn(w, h, |x, y| self.get(x0 + x, y0 + y))
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Clamps every pixel into `[0, 1]`.
    pub fn clamp_unit(&mut self) {
        for p in &mut self.data {
            *p = p.clamp(0.0, 1.0);
        }
    }
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GrayImage({}x{}, mean={:.3})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

/// A three-channel planar RGB image with `f32` pixels in `[0, 1]`.
#[derive(Clone, PartialEq)]
pub struct RgbImage {
    /// Red channel.
    pub r: GrayImage,
    /// Green channel.
    pub g: GrayImage,
    /// Blue channel.
    pub b: GrayImage,
}

impl RgbImage {
    /// Creates a black RGB image.
    pub fn new(width: usize, height: usize) -> Self {
        RgbImage {
            r: GrayImage::new(width, height),
            g: GrayImage::new(width, height),
            b: GrayImage::new(width, height),
        }
    }

    /// Creates an image filled with a constant color.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Self {
        RgbImage {
            r: GrayImage::filled(width, height, rgb[0]),
            g: GrayImage::filled(width, height, rgb[1]),
            b: GrayImage::filled(width, height, rgb[2]),
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.r.width()
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.r.height()
    }

    /// RGB triple at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the image.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [f32; 3] {
        [self.r.get(x, y), self.g.get(x, y), self.b.get(x, y)]
    }

    /// Sets the RGB triple at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the image.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        self.r.set(x, y, rgb[0]);
        self.g.set(x, y, rgb[1]);
        self.b.set(x, y, rgb[2]);
    }

    /// Luma (ITU-R BT.601) grayscale projection.
    pub fn to_gray(&self) -> GrayImage {
        GrayImage::from_fn(self.width(), self.height(), |x, y| {
            let [r, g, b] = self.get(x, y);
            0.299 * r + 0.587 * g + 0.114 * b
        })
    }

    /// Crops the rectangle `[x0, x0+w) × [y0, y0+h)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> RgbImage {
        RgbImage {
            r: self.r.crop(x0, y0, w, h),
            g: self.g.crop(x0, y0, w, h),
            b: self.b.crop(x0, y0, w, h),
        }
    }

    /// Multiplies every channel by `gain` (global illumination change) and
    /// clamps back to `[0, 1]`.
    pub fn scale_brightness(&mut self, gain: f32) {
        for ch in [&mut self.r, &mut self.g, &mut self.b] {
            for p in ch.as_mut_slice() {
                *p = (*p * gain).clamp(0.0, 1.0);
            }
        }
    }
}

impl fmt::Debug for RgbImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RgbImage({}x{})", self.width(), self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.mean(), 0.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = GrayImage::new(5, 5);
        img.set(2, 3, 0.7);
        assert_eq!(img.get(2, 3), 0.7);
        assert_eq!(img.get(3, 2), 0.0);
    }

    #[test]
    fn from_fn_coordinates() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn clamped_access_at_borders() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as f32);
        assert_eq!(img.get_clamped(-5, 0), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(1, 1));
    }

    #[test]
    fn crop_extracts_window() {
        let img = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.get(0, 0), 9.0);
        assert_eq!(c.get(1, 1), 14.0);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_out_of_bounds_panics() {
        GrayImage::new(3, 3).crop(2, 2, 2, 2);
    }

    #[test]
    fn rgb_to_gray_weights() {
        let mut img = RgbImage::new(1, 1);
        img.set(0, 0, [1.0, 0.0, 0.0]);
        assert!((img.to_gray().get(0, 0) - 0.299).abs() < 1e-6);
        img.set(0, 0, [1.0, 1.0, 1.0]);
        assert!((img.to_gray().get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn brightness_scaling_clamps() {
        let mut img = RgbImage::filled(2, 2, [0.8, 0.5, 0.2]);
        img.scale_brightness(2.0);
        assert_eq!(img.get(0, 0), [1.0, 1.0, 0.4]);
    }

    #[test]
    fn mean_of_filled() {
        let img = GrayImage::filled(10, 10, 0.25);
        assert!((img.mean() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn clamp_unit_bounds_pixels() {
        let mut img = GrayImage::from_vec(2, 1, vec![-0.5, 1.5]);
        img.clamp_unit();
        assert_eq!(img.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", GrayImage::new(2, 2)).contains("2x2"));
        assert!(format!("{:?}", RgbImage::new(2, 2)).contains("2x2"));
    }
}
