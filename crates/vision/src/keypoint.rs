//! Hessian-based keypoint detection with 64-d descriptors.
//!
//! Stands in for SURF (Section V-A of the paper): keypoints are local maxima
//! of the determinant-of-Hessian response on a lightly smoothed image, and
//! each keypoint gets a 64-dimensional descriptor — a 4×4 grid of
//! (Σdx, Σ|dx|, Σdy, Σ|dy|) gradient statistics over the patch, exactly
//! SURF's descriptor layout.

use crate::image::GrayImage;
use crate::{Result, VisionError};

/// The SURF-compatible descriptor length: a 4×4 grid × 4 statistics.
pub const DESCRIPTOR_DIM: usize = 64;

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeypointConfig {
    /// Minimum determinant-of-Hessian response for a keypoint.
    pub threshold: f32,
    /// Side of the square descriptor patch in pixels (must be ≥ 8).
    pub patch_size: usize,
    /// Cap on the number of keypoints returned (strongest first).
    pub max_keypoints: usize,
}

impl Default for KeypointConfig {
    fn default() -> Self {
        KeypointConfig {
            threshold: 1e-4,
            patch_size: 16,
            max_keypoints: 256,
        }
    }
}

/// A detected keypoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Keypoint {
    /// X coordinate in pixels.
    pub x: usize,
    /// Y coordinate in pixels.
    pub y: usize,
    /// Determinant-of-Hessian response (strength).
    pub response: f32,
    /// 64-d descriptor.
    pub descriptor: Vec<f64>,
}

/// Detects keypoints and computes their descriptors.
///
/// # Errors
///
/// Returns [`VisionError::TooSmall`] if the image cannot hold one descriptor
/// patch, or [`VisionError::InvalidArgument`] for a degenerate config.
pub fn detect_keypoints(img: &GrayImage, config: &KeypointConfig) -> Result<Vec<Keypoint>> {
    if config.patch_size < 8 || config.max_keypoints == 0 {
        return Err(VisionError::InvalidArgument(
            "patch_size must be >= 8 and max_keypoints positive".into(),
        ));
    }
    let margin = config.patch_size / 2 + 1;
    if img.width() < 2 * margin + 2 || img.height() < 2 * margin + 2 {
        return Err(VisionError::TooSmall(format!(
            "{}x{} image for patch size {}",
            img.width(),
            img.height(),
            config.patch_size
        )));
    }

    let smooth = box_blur3(img);
    let (w, h) = (smooth.width(), smooth.height());

    // Determinant of Hessian via central second differences.
    let mut response = GrayImage::new(w, h);
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = smooth.get(x, y);
            let dxx = smooth.get(x + 1, y) + smooth.get(x - 1, y) - 2.0 * c;
            let dyy = smooth.get(x, y + 1) + smooth.get(x, y - 1) - 2.0 * c;
            let dxy = 0.25
                * (smooth.get(x + 1, y + 1) + smooth.get(x - 1, y - 1)
                    - smooth.get(x + 1, y - 1)
                    - smooth.get(x - 1, y + 1));
            response.set(x, y, dxx * dyy - 0.81 * dxy * dxy);
        }
    }

    // Non-maximum suppression on a 3×3 neighborhood inside the margins.
    let mut found: Vec<(f32, usize, usize)> = Vec::new();
    for y in margin..h - margin {
        for x in margin..w - margin {
            let r = response.get(x, y);
            if r < config.threshold {
                continue;
            }
            let mut is_max = true;
            'nbhd: for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    if response.get((x as isize + dx) as usize, (y as isize + dy) as usize) > r {
                        is_max = false;
                        break 'nbhd;
                    }
                }
            }
            if is_max {
                found.push((r, x, y));
            }
        }
    }
    found.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    found.truncate(config.max_keypoints);

    Ok(found
        .into_iter()
        .map(|(r, x, y)| Keypoint {
            x,
            y,
            response: r,
            descriptor: describe_patch(&smooth, x, y, config.patch_size),
        })
        .collect())
}

/// SURF-style descriptor: the `patch` around `(cx, cy)` is split into a 4×4
/// grid; each tile contributes (Σdx, Σ|dx|, Σdy, Σ|dy|); the vector is
/// L2-normalized.
fn describe_patch(img: &GrayImage, cx: usize, cy: usize, patch: usize) -> Vec<f64> {
    let half = (patch / 2) as isize;
    let tile = (patch / 4).max(1) as isize;
    let mut desc = vec![0.0f64; DESCRIPTOR_DIM];
    for dy in -half..half {
        for dx in -half..half {
            let x = cx as isize + dx;
            let y = cy as isize + dy;
            let gx = (img.get_clamped(x + 1, y) - img.get_clamped(x - 1, y)) as f64;
            let gy = (img.get_clamped(x, y + 1) - img.get_clamped(x, y - 1)) as f64;
            let tx = (((dx + half) / tile).min(3)) as usize;
            let ty = (((dy + half) / tile).min(3)) as usize;
            let base = (ty * 4 + tx) * 4;
            desc[base] += gx;
            desc[base + 1] += gx.abs();
            desc[base + 2] += gy;
            desc[base + 3] += gy.abs();
        }
    }
    let norm: f64 = desc.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for v in &mut desc {
            *v /= norm;
        }
    }
    desc
}

/// 3×3 box blur with clamped borders — the light smoothing applied before
/// the Hessian.
fn box_blur3(img: &GrayImage) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut sum = 0.0;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                sum += img.get_clamped(x as isize + dx, y as isize + dy);
            }
        }
        sum / 9.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;
    use crate::image::RgbImage;

    /// An image with bright dots on a dark background — strong blob
    /// structure the Hessian responds to.
    fn dots_image() -> GrayImage {
        let mut rgb = RgbImage::new(64, 64);
        for (cx, cy) in [(16.0, 16.0), (48.0, 16.0), (16.0, 48.0), (48.0, 48.0)] {
            draw::fill_ellipse(&mut rgb, cx, cy, 3.0, 3.0, [1.0, 1.0, 1.0]);
        }
        rgb.to_gray()
    }

    #[test]
    fn detects_blobs() {
        let kps = detect_keypoints(&dots_image(), &KeypointConfig::default()).unwrap();
        assert!(!kps.is_empty(), "no keypoints found");
        // Every strong keypoint should be near one of the dots.
        for kp in kps.iter().take(4) {
            let near =
                [(16, 16), (48, 16), (16, 48), (48, 48)]
                    .iter()
                    .any(|&(cx, cy): &(i32, i32)| {
                        (kp.x as i32 - cx).abs() <= 4 && (kp.y as i32 - cy).abs() <= 4
                    });
            assert!(near, "keypoint at ({}, {}) not near a dot", kp.x, kp.y);
        }
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = GrayImage::filled(64, 64, 0.5);
        let kps = detect_keypoints(&img, &KeypointConfig::default()).unwrap();
        assert!(kps.is_empty());
    }

    #[test]
    fn descriptors_are_unit_norm() {
        let kps = detect_keypoints(&dots_image(), &KeypointConfig::default()).unwrap();
        for kp in &kps {
            assert_eq!(kp.descriptor.len(), DESCRIPTOR_DIM);
            let norm: f64 = kp.descriptor.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm={norm}");
        }
    }

    #[test]
    fn keypoints_sorted_by_response() {
        let kps = detect_keypoints(&dots_image(), &KeypointConfig::default()).unwrap();
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn max_keypoints_cap_respected() {
        let cfg = KeypointConfig {
            max_keypoints: 2,
            ..Default::default()
        };
        let kps = detect_keypoints(&dots_image(), &cfg).unwrap();
        assert!(kps.len() <= 2);
    }

    #[test]
    fn rejects_bad_config_and_tiny_image() {
        let img = dots_image();
        assert!(detect_keypoints(
            &img,
            &KeypointConfig {
                patch_size: 4,
                ..Default::default()
            }
        )
        .is_err());
        assert!(detect_keypoints(
            &img,
            &KeypointConfig {
                max_keypoints: 0,
                ..Default::default()
            }
        )
        .is_err());
        let tiny = GrayImage::new(8, 8);
        assert!(detect_keypoints(&tiny, &KeypointConfig::default()).is_err());
    }

    #[test]
    fn similar_patches_have_similar_descriptors() {
        // Two identical dots → their descriptors should be nearly equal.
        let mut rgb = RgbImage::new(64, 32);
        draw::fill_ellipse(&mut rgb, 16.0, 16.0, 3.0, 3.0, [1.0, 1.0, 1.0]);
        draw::fill_ellipse(&mut rgb, 48.0, 16.0, 3.0, 3.0, [1.0, 1.0, 1.0]);
        let kps = detect_keypoints(&rgb.to_gray(), &KeypointConfig::default()).unwrap();
        assert!(kps.len() >= 2);
        // Compare the keypoint closest to each blob center (the detector
        // also fires on blob edges, so the global top-2 may not pair up).
        let nearest = |cx: i64, cy: i64| {
            kps.iter()
                .min_by_key(|k| (k.x as i64 - cx).pow(2) + (k.y as i64 - cy).pow(2))
                .unwrap()
        };
        let a = nearest(16, 16);
        let b = nearest(48, 16);
        let d: f64 = a
            .descriptor
            .iter()
            .zip(&b.descriptor)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(d < 0.2, "identical blobs should match, distance {d}");
    }
}
