//! Summed-area tables (integral images).
//!
//! The C4 detector and the ACF channel aggregation both use box sums; the
//! integral image computes any axis-aligned box sum in O(1).

use crate::image::GrayImage;

/// A summed-area table over a grayscale image.
///
/// `table[(x, y)]` holds the sum of all pixels in `[0, x) × [0, y)`, so the
/// table is one element larger than the image in each dimension.
///
/// # Example
///
/// ```
/// use eecs_vision::image::GrayImage;
/// use eecs_vision::integral::IntegralImage;
///
/// let img = GrayImage::filled(4, 4, 1.0);
/// let ii = IntegralImage::build(&img);
/// assert!((ii.box_sum(1, 1, 3, 3) - 4.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,  // table width  = image width + 1
    height: usize, // table height = image height + 1
    data: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in a single pass.
    pub fn build(img: &GrayImage) -> IntegralImage {
        let w = img.width() + 1;
        let h = img.height() + 1;
        let mut data = vec![0.0f64; w * h];
        for y in 1..h {
            let mut row_sum = 0.0f64;
            for x in 1..w {
                row_sum += img.get(x - 1, y - 1) as f64;
                data[y * w + x] = data[(y - 1) * w + x] + row_sum;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            data,
        }
    }

    /// Sum of the pixel rectangle `[x0, x1) × [y0, y1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x1 < x0`, `y1 < y0`, or the rectangle exceeds the source
    /// image bounds.
    pub fn box_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
        assert!(
            x1 < self.width && y1 < self.height,
            "rectangle out of bounds"
        );
        let at = |x: usize, y: usize| self.data[y * self.width + x];
        at(x1, y1) - at(x0, y1) - at(x1, y0) + at(x0, y0)
    }

    /// Mean of the pixel rectangle `[x0, x1) × [y0, y1)`; 0 for an empty
    /// rectangle.
    pub fn box_mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let area = (x1 - x0) * (y1 - y0);
        if area == 0 {
            return 0.0;
        }
        self.box_sum(x0, y0, x1, y1) / area as f64
    }

    /// Total sum of all pixels.
    pub fn total(&self) -> f64 {
        self.data[self.data.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_of_constant_image() {
        let img = GrayImage::filled(3, 5, 2.0);
        let ii = IntegralImage::build(&img);
        assert!((ii.total() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn box_sum_matches_naive() {
        let img = GrayImage::from_fn(6, 4, |x, y| (x * y + x) as f32 * 0.1);
        let ii = IntegralImage::build(&img);
        for (x0, y0, x1, y1) in [(0, 0, 6, 4), (1, 1, 4, 3), (2, 0, 2, 4), (5, 3, 6, 4)] {
            let mut naive = 0.0f64;
            for y in y0..y1 {
                for x in x0..x1 {
                    naive += img.get(x, y) as f64;
                }
            }
            assert!(
                (ii.box_sum(x0, y0, x1, y1) - naive).abs() < 1e-6,
                "box ({x0},{y0})..({x1},{y1})"
            );
        }
    }

    #[test]
    fn empty_box_is_zero() {
        let img = GrayImage::filled(3, 3, 1.0);
        let ii = IntegralImage::build(&img);
        assert_eq!(ii.box_sum(1, 1, 1, 1), 0.0);
        assert_eq!(ii.box_mean(2, 2, 2, 2), 0.0);
    }

    #[test]
    fn box_mean_of_uniform_region() {
        let img = GrayImage::filled(8, 8, 0.5);
        let ii = IntegralImage::build(&img);
        assert!((ii.box_mean(2, 3, 7, 6) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let ii = IntegralImage::build(&GrayImage::new(3, 3));
        ii.box_sum(0, 0, 4, 3);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let ii = IntegralImage::build(&GrayImage::new(3, 3));
        ii.box_sum(2, 0, 1, 3);
    }
}
