//! Aggregated channel features (ACF).
//!
//! Dollár's ACF detector computes, per frame, ten feature channels —
//! three color channels, gradient magnitude, and six orientation-weighted
//! gradient channels — then *aggregates* (box-downsamples) them by a shrink
//! factor. Candidate windows are classified from raw channel lookups by a
//! boosted ensemble (`eecs_learn::boost`).
//!
//! The aggregation is why ACF is an order of magnitude cheaper than HOG
//! (Tables II–IV of the paper) and also why it misses small people at
//! 360×288: after shrink-4 aggregation a distant pedestrian spans only a
//! couple of channel pixels.

use crate::gradient::GradientField;
use crate::image::{GrayImage, RgbImage};
use crate::resize::box_downsample;
use crate::{Result, VisionError};

/// Number of channels produced by [`AcfChannels::compute`]:
/// 3 color + 1 gradient magnitude + [`ORIENT_BINS`] orientations.
pub const CHANNEL_COUNT: usize = 4 + ORIENT_BINS;

/// Number of quantized gradient-orientation channels.
pub const ORIENT_BINS: usize = 6;

/// The aggregated channel stack of one frame.
#[derive(Debug, Clone)]
pub struct AcfChannels {
    channels: Vec<GrayImage>,
    shrink: usize,
}

impl AcfChannels {
    /// Computes the ten aggregated channels of `img` with the given shrink
    /// factor.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidArgument`] for `shrink == 0` and
    /// [`VisionError::TooSmall`] when the image is smaller than one
    /// aggregation block.
    pub fn compute(img: &RgbImage, shrink: usize) -> Result<AcfChannels> {
        if shrink == 0 {
            return Err(VisionError::InvalidArgument(
                "shrink must be positive".into(),
            ));
        }
        if img.width() < shrink || img.height() < shrink {
            return Err(VisionError::TooSmall(format!(
                "{}x{} with shrink {}",
                img.width(),
                img.height(),
                shrink
            )));
        }
        let gray = img.to_gray();
        let grad = GradientField::compute(&gray);

        // Orientation channels: gradient magnitude split across bins.
        let (w, h) = (gray.width(), gray.height());
        let mut orient = vec![GrayImage::new(w, h); ORIENT_BINS];
        for y in 0..h {
            for x in 0..w {
                let mag = grad.magnitude.get(x, y);
                if mag == 0.0 {
                    continue;
                }
                let bin = grad.orientation_bin(x, y, ORIENT_BINS);
                orient[bin].set(x, y, mag);
            }
        }

        // Aggregate straight from borrowed full-resolution planes — the
        // color and magnitude channels need no owned copies of their
        // sources, only the downsampled outputs.
        let mut channels: Vec<GrayImage> = Vec::with_capacity(CHANNEL_COUNT);
        for c in [&img.r, &img.g, &img.b, &grad.magnitude] {
            channels.push(box_downsample(c, shrink)?);
        }
        for o in &orient {
            channels.push(box_downsample(o, shrink)?);
        }
        Ok(AcfChannels { channels, shrink })
    }

    /// Aggregated channel width.
    pub fn width(&self) -> usize {
        self.channels[0].width()
    }

    /// Aggregated channel height.
    pub fn height(&self) -> usize {
        self.channels[0].height()
    }

    /// The shrink factor used for aggregation.
    pub fn shrink(&self) -> usize {
        self.shrink
    }

    /// Borrow of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= CHANNEL_COUNT`.
    pub fn channel(&self, c: usize) -> &GrayImage {
        &self.channels[c]
    }

    /// Flattens the window with top-left aggregated-pixel `(x0, y0)` and
    /// size `w × h` (in aggregated pixels) into a single feature vector of
    /// length `w * h * CHANNEL_COUNT` — the ACF classifier input.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidArgument`] if the window exceeds the
    /// channel bounds.
    pub fn window_features(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<Vec<f64>> {
        if x0 + w > self.width() || y0 + h > self.height() || w == 0 || h == 0 {
            return Err(VisionError::InvalidArgument(format!(
                "window {x0},{y0} {w}x{h} exceeds channels {}x{}",
                self.width(),
                self.height()
            )));
        }
        let mut out = Vec::with_capacity(w * h * CHANNEL_COUNT);
        for ch in &self.channels {
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    out.push(ch.get(x, y) as f64);
                }
            }
        }
        Ok(out)
    }

    /// Feature-vector length for a `w × h` aggregated-pixel window.
    pub fn feature_len(w: usize, h: usize) -> usize {
        w * h * CHANNEL_COUNT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> RgbImage {
        let mut img = RgbImage::new(32, 24);
        for y in 0..24 {
            for x in 0..32 {
                img.set(
                    x,
                    y,
                    [(x as f32 / 32.0), (y as f32 / 24.0), ((x + y) % 2) as f32],
                );
            }
        }
        img
    }

    #[test]
    fn channel_count_and_dims() {
        let ch = AcfChannels::compute(&test_image(), 4).unwrap();
        assert_eq!(ch.width(), 8);
        assert_eq!(ch.height(), 6);
        assert_eq!(ch.shrink(), 4);
        assert_eq!(CHANNEL_COUNT, 10);
    }

    #[test]
    fn color_channels_average_input() {
        let img = RgbImage::filled(8, 8, [0.25, 0.5, 0.75]);
        let ch = AcfChannels::compute(&img, 2).unwrap();
        assert!((ch.channel(0).get(1, 1) - 0.25).abs() < 1e-5);
        assert!((ch.channel(1).get(1, 1) - 0.5).abs() < 1e-5);
        assert!((ch.channel(2).get(1, 1) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn flat_image_has_empty_gradient_channels() {
        let img = RgbImage::filled(16, 16, [0.5, 0.5, 0.5]);
        let ch = AcfChannels::compute(&img, 2).unwrap();
        for c in 3..CHANNEL_COUNT {
            assert!(ch.channel(c).as_slice().iter().all(|&v| v.abs() < 1e-5));
        }
    }

    #[test]
    fn orientation_channels_partition_magnitude() {
        let ch = AcfChannels::compute(&test_image(), 1).unwrap();
        // Sum of orientation channels equals the magnitude channel
        // pixel-wise (each pixel's magnitude goes to exactly one bin).
        for y in 0..ch.height() {
            for x in 0..ch.width() {
                let mag = ch.channel(3).get(x, y);
                let sum: f32 = (4..CHANNEL_COUNT).map(|c| ch.channel(c).get(x, y)).sum();
                assert!((mag - sum).abs() < 1e-4, "at ({x},{y}): {mag} vs {sum}");
            }
        }
    }

    #[test]
    fn window_features_layout() {
        let ch = AcfChannels::compute(&test_image(), 4).unwrap();
        let f = ch.window_features(1, 1, 3, 2).unwrap();
        assert_eq!(f.len(), AcfChannels::feature_len(3, 2));
        // First element is channel 0 at (1,1).
        assert!((f[0] - ch.channel(0).get(1, 1) as f64).abs() < 1e-9);
    }

    #[test]
    fn window_bounds_validated() {
        let ch = AcfChannels::compute(&test_image(), 4).unwrap();
        assert!(ch.window_features(7, 0, 2, 2).is_err());
        assert!(ch.window_features(0, 0, 0, 2).is_err());
    }

    #[test]
    fn rejects_bad_shrink() {
        assert!(AcfChannels::compute(&test_image(), 0).is_err());
        assert!(AcfChannels::compute(&RgbImage::new(2, 2), 4).is_err());
    }
}
