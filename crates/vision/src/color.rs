//! Color features of detected regions.
//!
//! Section IV-C / V-A of the paper: each detected bounding box is summarized
//! by a "Mean Color" feature (40-dimensional after PCA in the paper's
//! metadata format) used, together with homography projection, to re-identify
//! the same person across cameras. We compute a horizontal-stripe mean-color
//! descriptor (the standard person re-id layout: people differ mostly by
//! clothing color bands), plus a coarse color histogram used in the video
//! comparison feature.

use crate::image::RgbImage;
use crate::{Result, VisionError};

/// Dimension of [`mean_color_feature`]: [`STRIPES`] stripes × 3 channels +
/// 4 global moments = 40, matching the paper's 40-d color feature.
pub const MEAN_COLOR_DIM: usize = STRIPES * 3 + 4;

/// Number of horizontal stripes in the mean-color descriptor.
pub const STRIPES: usize = 12;

/// Computes the 40-d mean-color feature of the region
/// `[x0, x0+w) × [y0, y0+h)` of `img`.
///
/// Layout: 12 horizontal stripes, each contributing its mean (R, G, B),
/// followed by 4 global statistics (overall luminance mean/std and the two
/// chromaticity means).
///
/// # Errors
///
/// Returns [`VisionError::InvalidArgument`] if the region is empty or
/// exceeds the image bounds.
pub fn mean_color_feature(
    img: &RgbImage,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
) -> Result<Vec<f64>> {
    if w == 0 || h == 0 {
        return Err(VisionError::InvalidArgument("empty region".into()));
    }
    if x0 + w > img.width() || y0 + h > img.height() {
        return Err(VisionError::InvalidArgument(format!(
            "region {x0},{y0} {w}x{h} exceeds image {}x{}",
            img.width(),
            img.height()
        )));
    }
    let mut out = vec![0.0f64; MEAN_COLOR_DIM];
    let mut counts = [0usize; STRIPES];
    let mut lum_sum = 0.0f64;
    let mut lum_sq = 0.0f64;
    let mut chroma_r = 0.0f64;
    let mut chroma_b = 0.0f64;
    for y in y0..y0 + h {
        let stripe = ((y - y0) * STRIPES / h).min(STRIPES - 1);
        for x in x0..x0 + w {
            let [r, g, b] = img.get(x, y);
            let (r, g, b) = (r as f64, g as f64, b as f64);
            out[stripe * 3] += r;
            out[stripe * 3 + 1] += g;
            out[stripe * 3 + 2] += b;
            counts[stripe] += 1;
            let lum = 0.299 * r + 0.587 * g + 0.114 * b;
            lum_sum += lum;
            lum_sq += lum * lum;
            let total = (r + g + b).max(1e-9);
            chroma_r += r / total;
            chroma_b += b / total;
        }
    }
    for s in 0..STRIPES {
        if counts[s] > 0 {
            for c in 0..3 {
                out[s * 3 + c] /= counts[s] as f64;
            }
        }
    }
    let n = (w * h) as f64;
    let lum_mean = lum_sum / n;
    let lum_var = (lum_sq / n - lum_mean * lum_mean).max(0.0);
    out[STRIPES * 3] = lum_mean;
    out[STRIPES * 3 + 1] = lum_var.sqrt();
    out[STRIPES * 3 + 2] = chroma_r / n;
    out[STRIPES * 3 + 3] = chroma_b / n;
    Ok(out)
}

/// A coarse `bins³`-bin RGB joint histogram of the whole image,
/// L1-normalized — the color component of the compact video-comparison
/// feature.
///
/// # Errors
///
/// Returns [`VisionError::InvalidArgument`] for `bins == 0` or an empty
/// image.
pub fn color_histogram(img: &RgbImage, bins: usize) -> Result<Vec<f64>> {
    if bins == 0 {
        return Err(VisionError::InvalidArgument("bins must be positive".into()));
    }
    if img.width() == 0 || img.height() == 0 {
        return Err(VisionError::InvalidArgument("empty image".into()));
    }
    let mut hist = vec![0.0f64; bins * bins * bins];
    let quant = |v: f32| (((v.clamp(0.0, 1.0)) * bins as f32) as usize).min(bins - 1);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let [r, g, b] = img.get(x, y);
            hist[(quant(r) * bins + quant(g)) * bins + quant(b)] += 1.0;
        }
    }
    let total = (img.width() * img.height()) as f64;
    for h in &mut hist {
        *h /= total;
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_is_40() {
        assert_eq!(MEAN_COLOR_DIM, 40);
    }

    #[test]
    fn uniform_region_feature() {
        let img = RgbImage::filled(20, 36, [0.2, 0.4, 0.6]);
        let f = mean_color_feature(&img, 0, 0, 20, 36).unwrap();
        assert_eq!(f.len(), MEAN_COLOR_DIM);
        for s in 0..STRIPES {
            assert!((f[s * 3] - 0.2).abs() < 1e-6);
            assert!((f[s * 3 + 1] - 0.4).abs() < 1e-6);
            assert!((f[s * 3 + 2] - 0.6).abs() < 1e-6);
        }
        // Uniform color → zero luminance std.
        assert!(f[STRIPES * 3 + 1] < 1e-6);
    }

    #[test]
    fn stripes_capture_vertical_structure() {
        // Top half red, bottom half blue.
        let mut img = RgbImage::new(10, 24);
        for y in 0..24 {
            for x in 0..10 {
                img.set(
                    x,
                    y,
                    if y < 12 {
                        [1.0, 0.0, 0.0]
                    } else {
                        [0.0, 0.0, 1.0]
                    },
                );
            }
        }
        let f = mean_color_feature(&img, 0, 0, 10, 24).unwrap();
        assert!((f[0] - 1.0).abs() < 1e-6); // first stripe red
        assert!((f[(STRIPES - 1) * 3 + 2] - 1.0).abs() < 1e-6); // last stripe blue
    }

    #[test]
    fn same_person_different_region_matches() {
        // Same color pattern at two positions → near-identical features.
        let mut img = RgbImage::filled(40, 40, [0.1, 0.1, 0.1]);
        for (x0, y0) in [(2usize, 4usize), (24, 4)] {
            for y in 0..24 {
                for x in 0..8 {
                    let c = if y < 12 {
                        [0.9, 0.1, 0.1]
                    } else {
                        [0.1, 0.1, 0.9]
                    };
                    img.set(x0 + x, y0 + y, c);
                }
            }
        }
        let f1 = mean_color_feature(&img, 2, 4, 8, 24).unwrap();
        let f2 = mean_color_feature(&img, 24, 4, 8, 24).unwrap();
        let d: f64 = f1.iter().zip(&f2).map(|(a, b)| (a - b).abs()).sum();
        assert!(d < 1e-9);
    }

    #[test]
    fn rejects_bad_regions() {
        let img = RgbImage::new(8, 8);
        assert!(mean_color_feature(&img, 0, 0, 0, 4).is_err());
        assert!(mean_color_feature(&img, 4, 4, 8, 8).is_err());
    }

    #[test]
    fn histogram_normalized_and_peaked() {
        let img = RgbImage::filled(10, 10, [0.9, 0.1, 0.1]);
        let h = color_histogram(&img, 4).unwrap();
        assert_eq!(h.len(), 64);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // All mass in one bin.
        assert!((h.iter().cloned().fold(0.0, f64::max) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(color_histogram(&RgbImage::new(4, 4), 0).is_err());
        assert!(color_histogram(&RgbImage::new(0, 0), 4).is_err());
    }

    #[test]
    fn distinct_colors_land_in_distinct_bins() {
        let red = RgbImage::filled(4, 4, [1.0, 0.0, 0.0]);
        let blue = RgbImage::filled(4, 4, [0.0, 0.0, 1.0]);
        let hr = color_histogram(&red, 2).unwrap();
        let hb = color_histogram(&blue, 2).unwrap();
        let overlap: f64 = hr.iter().zip(&hb).map(|(a, b)| a.min(*b)).sum();
        assert_eq!(overlap, 0.0);
    }
}
