//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes everything that can go wrong on the star
//! network: per-link packet loss, delivery delay and jitter, duplication,
//! reordering, scheduled link outages, and camera crash (brownout)
//! windows. The plan is *seeded*: every probabilistic decision is a pure
//! function of `(seed, link, event tag, event counter)`, so two runs of
//! the same simulation with the same plan produce byte-for-byte identical
//! traces — no global RNG, no wall-clock dependence.
//!
//! Time is measured in simulation *rounds* (the controller's assessment /
//! operation cadence), matching how `eecs-core` advances the network via
//! [`crate::Network::advance_round`]. Outage and crash windows are
//! half-open round intervals.
//!
//! Fault semantics, chosen to stay cheap and deterministic:
//!
//! * **Loss** applies independently to each data attempt *and* to each
//!   acknowledgement, so a message can be delivered yet still retried
//!   (the classic duplicate-generating failure mode).
//! * **Outage** means the link is deterministically down for the whole
//!   round: the sender burns one probe attempt (carrier sense / missed
//!   beacons reveal a dead channel), then gives up until the next round.
//! * **Crash** means the camera itself is unpowered: no attempt is made
//!   and no energy is drawn.

use std::collections::BTreeMap;

/// Event-tag for a data transmission roll.
pub(crate) const TAG_DATA: u64 = 1;
/// Event-tag for an acknowledgement roll.
pub(crate) const TAG_ACK: u64 = 2;
/// Event-tag for a delivery-jitter roll.
pub(crate) const TAG_JITTER: u64 = 3;
/// Event-tag for a duplication roll.
pub(crate) const TAG_DUP: u64 = 4;
/// Event-tag for a reordering roll.
pub(crate) const TAG_REORDER: u64 = 5;
/// Event-tag for a payload-corruption roll.
pub(crate) const TAG_CORRUPT: u64 = 6;

/// Stochastic fault parameters of one camera ↔ controller link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1)` that one transmission attempt (data or
    /// ack) is lost.
    pub loss: f64,
    /// Fixed delivery delay, in rounds.
    pub delay_rounds: usize,
    /// Random extra delay: each delivery draws 0..=`jitter_rounds` extra
    /// rounds.
    pub jitter_rounds: usize,
    /// Probability in `[0, 1)` that a delivered packet is duplicated by
    /// the network.
    pub duplicate: f64,
    /// Probability in `[0, 1)` that a delivered packet overtakes the one
    /// before it in the controller inbox.
    pub reorder: f64,
}

impl LinkFaults {
    /// A perfectly clean link: no loss, delay, duplication or reorder.
    pub fn ideal() -> LinkFaults {
        LinkFaults {
            loss: 0.0,
            delay_rounds: 0,
            jitter_rounds: 0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    /// A link that only loses packets, with probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= loss < 1` (at `loss = 1` a retry loop could
    /// never terminate).
    pub fn lossy(loss: f64) -> LinkFaults {
        let f = LinkFaults {
            loss,
            ..LinkFaults::ideal()
        };
        f.check();
        f
    }

    /// Whether this link behaves perfectly.
    pub fn is_ideal(&self) -> bool {
        *self == LinkFaults::ideal()
    }

    fn check(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..1.0).contains(&p),
                "fault probability `{name}` must be in [0, 1), got {p}"
            );
        }
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::ideal()
    }
}

/// A half-open window of simulation rounds, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First round inside the window.
    pub start: usize,
    /// First round past the window.
    pub end: usize,
}

impl Window {
    /// The window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end` (empty windows are configuration bugs).
    pub fn new(start: usize, end: usize) -> Window {
        assert!(start < end, "empty fault window [{start}, {end})");
        Window { start, end }
    }

    /// Whether `round` falls inside the window.
    pub fn contains(&self, round: usize) -> bool {
        (self.start..self.end).contains(&round)
    }
}

/// One end of a link on the star network: the mains-powered hub or a
/// camera. Partition islands are sets of endpoints, so a split can cut
/// cameras off from the hub, from each other, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// The mains-powered controller hub.
    Hub,
    /// Camera `j`'s radio.
    Camera(usize),
}

/// A deterministic schedule of network partitions.
///
/// A partition splits the node graph into *islands* for a window of
/// rounds: traffic inside an island flows normally, traffic between
/// islands is dropped at the sender (the radio sees a dead channel).
/// Endpoints not named in any island of an active split are isolated
/// singletons — they can reach nobody and nobody can reach them.
///
/// Besides symmetric splits the plan supports *one-way* cuts (`from`
/// can no longer reach `to`, but the reverse direction still works —
/// the classic asymmetric-link failure) and *flapping* (a split that
/// alternates on/off with a fixed period). All schedules are pure
/// functions of the round number: the plan consumes no random rolls,
/// so an empty plan is bit-identical to no plan at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionPlan {
    splits: Vec<(Window, Vec<Vec<Endpoint>>)>,
    one_way: Vec<(Endpoint, Endpoint, Window)>,
}

impl PartitionPlan {
    /// A fully connected network — the pre-partition behavior.
    pub fn none() -> PartitionPlan {
        PartitionPlan::default()
    }

    /// Splits the network into `islands` over rounds `[start, end)`.
    /// An empty window (`start >= end`) schedules nothing — the plan is
    /// unchanged and stays bit-identical to no plan at all.
    ///
    /// # Panics
    ///
    /// Panics when an island is empty or when an endpoint appears in
    /// more than one island of the same split.
    pub fn with_split(mut self, islands: Vec<Vec<Endpoint>>, start: usize, end: usize) -> Self {
        Self::check_islands(&islands);
        if start < end {
            self.splits.push((Window::new(start, end), islands));
        }
        self
    }

    /// Cuts the `from → to` direction only over rounds `[start, end)`;
    /// `to → from` keeps working. An empty window schedules nothing.
    ///
    /// # Panics
    ///
    /// Panics when `from == to`.
    pub fn with_one_way(mut self, from: Endpoint, to: Endpoint, start: usize, end: usize) -> Self {
        assert!(from != to, "one-way cut from an endpoint to itself");
        if start < end {
            self.one_way.push((from, to, Window::new(start, end)));
        }
        self
    }

    /// A flapping split: `islands` apply over every other `period`-round
    /// slice of `[start, end)` — on for `[start, start + period)`, off
    /// for the next `period` rounds, on again, and so on. Deterministic;
    /// no rolls are consumed.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`, `period == 0`, or the islands are
    /// malformed (see [`PartitionPlan::with_split`]).
    pub fn with_flapping(
        mut self,
        islands: Vec<Vec<Endpoint>>,
        start: usize,
        end: usize,
        period: usize,
    ) -> Self {
        assert!(start < end, "empty fault window [{start}, {end})");
        assert!(period > 0, "flapping period must be positive");
        Self::check_islands(&islands);
        let mut s = start;
        while s < end {
            let e = (s + period).min(end);
            self.splits.push((Window::new(s, e), islands.clone()));
            s += 2 * period;
        }
        self
    }

    fn check_islands(islands: &[Vec<Endpoint>]) {
        let mut seen = Vec::new();
        for island in islands {
            assert!(!island.is_empty(), "empty partition island");
            for ep in island {
                assert!(
                    !seen.contains(ep),
                    "endpoint {ep:?} appears in two islands of one split"
                );
                seen.push(*ep);
            }
        }
    }

    /// Whether a message sent `from → to` at `round` can traverse the
    /// network. Always true for `from == to` and for rounds outside
    /// every window; the check is pure and consumes no rolls.
    pub fn can_reach(&self, from: Endpoint, to: Endpoint, round: usize) -> bool {
        if from == to {
            return true;
        }
        for (w, islands) in &self.splits {
            if !w.contains(round) {
                continue;
            }
            let home = |ep: Endpoint| islands.iter().position(|i| i.contains(&ep));
            match (home(from), home(to)) {
                // Unlisted endpoints are isolated singletons.
                (Some(a), Some(b)) if a == b => {}
                _ => return false,
            }
        }
        !self
            .one_way
            .iter()
            .any(|(f, t, w)| *f == from && *t == to && w.contains(round))
    }

    /// Whether any split or one-way cut is active at `round`.
    pub fn is_partitioned(&self, round: usize) -> bool {
        self.splits.iter().any(|(w, _)| w.contains(round))
            || self.one_way.iter().any(|(_, _, w)| w.contains(round))
    }

    /// Whether the plan schedules any partition at all. A `none()` plan
    /// lets the runtime skip the partition control plane entirely.
    pub fn enabled(&self) -> bool {
        !self.splits.is_empty() || !self.one_way.is_empty()
    }
}

/// A seeded schedule of in-flight payload corruption.
///
/// Where loss makes a frame *vanish*, corruption makes it arrive
/// *wrong*: with probability `rate` a delivered data attempt has
/// `flips` of its bits inverted on the wire. Which bits flip is a pure
/// SplitMix64-finalized function of `(seed, from, to, round, attempt)`
/// — no extra random state — so a replay corrupts exactly the same bits
/// of exactly the same frames.
///
/// The flip count is capped at 3: CRC-32 has Hamming distance ≥ 4 on
/// frames far larger than this protocol's, so every corrupted frame is
/// *guaranteed* to fail the receiver's checksum and be rejected (then
/// retransmitted by the ARQ) rather than consumed. That turns "corrupt
/// data never enters the system" into a deterministic invariant.
///
/// [`CorruptionPlan::none`] (the default) flips nothing, consumes no
/// rolls, and leaves runs bit-identical to pre-corruption builds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorruptionPlan {
    rate: f64,
    flips: u32,
}

impl CorruptionPlan {
    /// No corruption at all — the pre-corruption behavior.
    pub fn none() -> CorruptionPlan {
        CorruptionPlan::default()
    }

    /// Corrupts each delivered data attempt with probability `rate`,
    /// flipping one bit per corrupted frame.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn with_rate(rate: f64) -> CorruptionPlan {
        assert!(
            (0.0..1.0).contains(&rate),
            "corruption rate must be in [0, 1), got {rate}"
        );
        CorruptionPlan {
            rate,
            flips: if rate > 0.0 { 1 } else { 0 },
        }
    }

    /// Sets the number of bits flipped per corrupted frame.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= flips <= 3` (≤ 3 keeps CRC-32 detection
    /// guaranteed; see the type docs).
    pub fn with_flips(mut self, flips: u32) -> CorruptionPlan {
        assert!(
            (1..=3).contains(&flips),
            "flips must be in 1..=3 to stay within CRC-32's guaranteed \
             detection distance, got {flips}"
        );
        self.flips = flips;
        self
    }

    /// Probability that one delivered data attempt is corrupted.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether the plan corrupts anything. A `none()` plan lets the
    /// transport skip the corruption roll entirely (zero-roll
    /// discipline: disabled plans change no random stream).
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// The bit positions flipped in a `frame_bits`-bit frame sent
    /// `from → to` at `(round, attempt)` — a pure function of its
    /// arguments and `seed`. Positions are distinct, so the frame
    /// always differs from the original in exactly `flips` bits.
    pub fn flip_mask(
        &self,
        seed: u64,
        from: usize,
        to: Endpoint,
        round: usize,
        attempt: u32,
        frame_bits: usize,
    ) -> Vec<usize> {
        debug_assert!(frame_bits > 0, "cannot corrupt an empty frame");
        let to_code = match to {
            Endpoint::Hub => 0u64,
            Endpoint::Camera(j) => j as u64 + 1,
        };
        let base = seed
            .wrapping_add((from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(to_code.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((round as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let mut mask = Vec::with_capacity(self.flips as usize);
        let mut draw = 0u64;
        while mask.len() < (self.flips as usize).min(frame_bits) {
            let mut z = base.wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            draw += 1;
            let bit = (z % frame_bits as u64) as usize;
            // Distinct positions only: a repeated flip would cancel out
            // and let the frame through clean.
            if !mask.contains(&bit) {
                mask.push(bit);
            }
        }
        mask
    }
}

/// A seeded, deterministic schedule of network faults.
///
/// Construct with [`FaultPlan::ideal`] (no faults, the default) or
/// [`FaultPlan::seeded`], then layer faults with the builder methods:
///
/// ```
/// use eecs_net::{FaultPlan, LinkFaults};
///
/// let plan = FaultPlan::seeded(42)
///     .with_default_faults(LinkFaults::lossy(0.3))
///     .with_outage(1, 2, 4) // camera 1's link down for rounds 2..4
///     .with_crash(3, 0, 10); // camera 3 never comes up
/// assert!(plan.is_crashed(3, 5) && !plan.is_crashed(2, 5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_faults: LinkFaults,
    per_link: BTreeMap<usize, LinkFaults>,
    outages: Vec<(usize, Window)>,
    crashes: Vec<(usize, Window)>,
    partition: PartitionPlan,
    corruption: CorruptionPlan,
}

impl FaultPlan {
    /// A plan with no faults at all — the network behaves exactly like
    /// the pre-fault-injection ideal transport.
    pub fn ideal() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// An empty plan carrying the RNG `seed`; add faults with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_faults: LinkFaults::ideal(),
            per_link: BTreeMap::new(),
            outages: Vec::new(),
            crashes: Vec::new(),
            partition: PartitionPlan::none(),
            corruption: CorruptionPlan::none(),
        }
    }

    /// The seed every roll is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the fault parameters used by links without a per-link entry.
    ///
    /// # Panics
    ///
    /// Panics when a probability is outside `[0, 1)`.
    pub fn with_default_faults(mut self, faults: LinkFaults) -> FaultPlan {
        faults.check();
        self.default_faults = faults;
        self
    }

    /// Overrides the fault parameters of `camera`'s link.
    ///
    /// # Panics
    ///
    /// Panics when a probability is outside `[0, 1)`.
    pub fn with_link_faults(mut self, camera: usize, faults: LinkFaults) -> FaultPlan {
        faults.check();
        self.per_link.insert(camera, faults);
        self
    }

    /// Schedules a link outage for `camera` over rounds `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`.
    pub fn with_outage(mut self, camera: usize, start: usize, end: usize) -> FaultPlan {
        self.outages.push((camera, Window::new(start, end)));
        self
    }

    /// Schedules a crash (brownout) of `camera` over rounds
    /// `[start, end)`: the device is off, so it neither computes, sends,
    /// nor receives.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`.
    pub fn with_crash(mut self, camera: usize, start: usize, end: usize) -> FaultPlan {
        self.crashes.push((camera, Window::new(start, end)));
        self
    }

    /// Attaches a partition schedule to the plan.
    pub fn with_partition(mut self, partition: PartitionPlan) -> FaultPlan {
        self.partition = partition;
        self
    }

    /// The partition schedule of this plan.
    pub fn partition(&self) -> &PartitionPlan {
        &self.partition
    }

    /// Attaches an in-flight payload-corruption schedule to the plan.
    pub fn with_corruption(mut self, corruption: CorruptionPlan) -> FaultPlan {
        self.corruption = corruption;
        self
    }

    /// The corruption schedule of this plan.
    pub fn corruption(&self) -> &CorruptionPlan {
        &self.corruption
    }

    /// The fault parameters governing `camera`'s link.
    pub fn faults(&self, camera: usize) -> LinkFaults {
        self.per_link
            .get(&camera)
            .copied()
            .unwrap_or(self.default_faults)
    }

    /// Whether `camera`'s link is in a scheduled outage at `round`.
    pub fn is_outage(&self, camera: usize, round: usize) -> bool {
        self.outages
            .iter()
            .any(|(c, w)| *c == camera && w.contains(round))
    }

    /// Whether `camera` is crashed (unpowered) at `round`.
    pub fn is_crashed(&self, camera: usize, round: usize) -> bool {
        self.crashes
            .iter()
            .any(|(c, w)| *c == camera && w.contains(round))
    }

    /// Whether the plan injects any fault at all. An ideal plan lets the
    /// transport skip every roll.
    pub fn enabled(&self) -> bool {
        !self.default_faults.is_ideal()
            || self.per_link.values().any(|f| !f.is_ideal())
            || !self.outages.is_empty()
            || !self.crashes.is_empty()
            || self.partition.enabled()
            || self.corruption.enabled()
    }

    /// Deterministic uniform draw in `[0, 1)` for event number `counter`
    /// of kind `tag` on `link`.
    ///
    /// SplitMix64-style finalizer over the mixed inputs; the counter is
    /// supplied by the transport, which increments it once per roll, so a
    /// replay with the same plan and the same event order reproduces
    /// every outcome exactly.
    pub(crate) fn unit_roll(&self, link: usize, tag: u64, counter: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((link as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(tag.wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(counter.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::ideal()
    }
}

/// A deterministic schedule of *controller* crashes.
///
/// Where [`FaultPlan`] kills cameras and links, this plan kills the hub:
/// at the first round of each window the currently acting controller
/// dies mid-round. The runtime reacts by failing over — every camera
/// burns a probe discovering the silence, the highest-battery camera is
/// elected, and selection state is restored from the latest checkpoint.
/// Once a camera holds the controller seat it keeps it (no failback);
/// later windows crash *that* controller in turn, so a multi-window plan
/// produces a chain of handovers.
///
/// [`ControllerFaultPlan::none`] (the default) changes nothing anywhere:
/// the simulation takes no checkpoints and the mains-powered controller
/// is immortal, preserving bit-identical replays of fault-free runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerFaultPlan {
    crashes: Vec<Window>,
}

impl ControllerFaultPlan {
    /// An immortal controller — the pre-fault-injection behavior.
    pub fn none() -> ControllerFaultPlan {
        ControllerFaultPlan::default()
    }

    /// Schedules a controller crash over rounds `[start, end)`. The
    /// crash fires at `start`; the rest of the window only matters for
    /// [`ControllerFaultPlan::is_down`] (the crashed host stays dark and
    /// never reclaims the seat).
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`.
    pub fn with_crash(mut self, start: usize, end: usize) -> ControllerFaultPlan {
        self.crashes.push(Window::new(start, end));
        self
    }

    /// Whether a crash fires at exactly `round` (the moment the acting
    /// controller dies and failover must run).
    pub fn crash_starts(&self, round: usize) -> bool {
        self.crashes.iter().any(|w| w.start == round)
    }

    /// Whether some crashed controller host is still dark at `round`.
    pub fn is_down(&self, round: usize) -> bool {
        self.crashes.iter().any(|w| w.contains(round))
    }

    /// Whether the plan schedules any crash at all. A `none()` plan lets
    /// the runtime skip checkpointing entirely.
    pub fn enabled(&self) -> bool {
        !self.crashes.is_empty()
    }
}

/// A deterministic schedule of fleet membership churn.
///
/// Where [`FaultPlan`] makes cameras *fail* (crashed hardware the
/// controller still plans around), a `ChurnPlan` makes them *come and
/// go*: a departed camera is not part of the fleet at all — its routes,
/// re-probe schedules, quarantine entries and sticky assignments are
/// drained, and a later rejoin re-admits it through an incremental
/// assessment probe. Membership is evaluated at round boundaries only.
///
/// Three schedule kinds compose:
///
/// * **late joins** — `with_join(camera, round)` keeps the camera out of
///   the fleet until `round`,
/// * **absence windows** — `with_leave(camera, start, end)` removes the
///   camera over `[start, end)` (rejoining at `end`);
///   `with_depart(camera, round)` removes it for good,
/// * **random absences** — `with_random_absence(rate, from)` makes every
///   `(camera, round)` from `from` on absent with probability `rate`.
///
/// Every decision — including the random one — is a pure
/// SplitMix64-finalized function of `(seed, camera, round)`: no counter,
/// no global RNG state. An [`ChurnPlan::ideal`] plan therefore consumes
/// zero rolls and leaves runs bit-identical to builds without churn, and
/// worker count can never perturb membership.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnPlan {
    seed: u64,
    joins: BTreeMap<usize, usize>,
    absences: Vec<(usize, Window)>,
    departures: Vec<(usize, usize)>,
    random_rate: f64,
    random_from: usize,
}

impl ChurnPlan {
    /// A fixed fleet — every configured camera is a member of every
    /// round, exactly the pre-churn behavior.
    pub fn ideal() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// An empty plan carrying the RNG `seed` for random absences; add
    /// schedules with the `with_*` builders.
    pub fn seeded(seed: u64) -> ChurnPlan {
        ChurnPlan {
            seed,
            ..ChurnPlan::default()
        }
    }

    /// The seed random absences are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Keeps `camera` out of the fleet until `round` (a late join at
    /// `round`). Joining at round 0 schedules nothing.
    pub fn with_join(mut self, camera: usize, round: usize) -> ChurnPlan {
        if round > 0 {
            let slot = self.joins.entry(camera).or_insert(round);
            *slot = (*slot).max(round);
        }
        self
    }

    /// Removes `camera` from the fleet over rounds `[start, end)`; it
    /// rejoins at `end`.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end`.
    pub fn with_leave(mut self, camera: usize, start: usize, end: usize) -> ChurnPlan {
        self.absences.push((camera, Window::new(start, end)));
        self
    }

    /// Removes `camera` from the fleet at `round`, permanently.
    pub fn with_depart(mut self, camera: usize, round: usize) -> ChurnPlan {
        self.departures.push((camera, round));
        self
    }

    /// Makes each `(camera, round)` with `round >= from` absent with
    /// probability `rate`, decided purely from the seed. Starting the
    /// randomness at `from > 0` keeps the initial fleet deterministic.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1` (at rate 1 the fleet would be
    /// permanently empty).
    pub fn with_random_absence(mut self, rate: f64, from: usize) -> ChurnPlan {
        assert!(
            (0.0..1.0).contains(&rate),
            "absence rate must be in [0, 1), got {rate}"
        );
        self.random_rate = rate;
        self.random_from = from;
        self
    }

    /// Whether `camera` is a fleet member at `round` — a pure function
    /// of the plan, so replays and parallel schedules always agree.
    pub fn is_member(&self, camera: usize, round: usize) -> bool {
        if self.joins.get(&camera).is_some_and(|&r| round < r) {
            return false;
        }
        if self
            .absences
            .iter()
            .any(|(c, w)| *c == camera && w.contains(round))
        {
            return false;
        }
        if self
            .departures
            .iter()
            .any(|(c, r)| *c == camera && round >= *r)
        {
            return false;
        }
        if self.random_rate > 0.0 && round >= self.random_from {
            // Keyed directly on (camera, round): no event counter, so
            // the draw cannot drift with evaluation order.
            let mut z = self
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((camera as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add((round as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.random_rate {
                return false;
            }
        }
        true
    }

    /// Whether the plan schedules any membership change at all. An
    /// ideal plan lets the runtime skip the churn bookkeeping entirely.
    pub fn enabled(&self) -> bool {
        !self.joins.is_empty()
            || !self.absences.is_empty()
            || !self.departures.is_empty()
            || self.random_rate > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_plan_is_disabled() {
        assert!(!FaultPlan::ideal().enabled());
        assert!(LinkFaults::ideal().is_ideal());
    }

    #[test]
    fn builders_enable_the_plan() {
        assert!(FaultPlan::seeded(1)
            .with_default_faults(LinkFaults::lossy(0.1))
            .enabled());
        assert!(FaultPlan::seeded(1)
            .with_link_faults(2, LinkFaults::lossy(0.5))
            .enabled());
        assert!(FaultPlan::seeded(1).with_outage(0, 0, 1).enabled());
        assert!(FaultPlan::seeded(1).with_crash(0, 3, 9).enabled());
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::seeded(7)
            .with_outage(2, 3, 5)
            .with_crash(1, 0, 2);
        assert!(!plan.is_outage(2, 2));
        assert!(plan.is_outage(2, 3) && plan.is_outage(2, 4));
        assert!(!plan.is_outage(2, 5));
        assert!(!plan.is_outage(0, 4), "outage is per-camera");
        assert!(plan.is_crashed(1, 0) && !plan.is_crashed(1, 2));
    }

    #[test]
    fn per_link_faults_override_default() {
        let plan = FaultPlan::seeded(9)
            .with_default_faults(LinkFaults::lossy(0.2))
            .with_link_faults(1, LinkFaults::ideal());
        assert_eq!(plan.faults(0).loss, 0.2);
        assert!(plan.faults(1).is_ideal());
    }

    #[test]
    fn rolls_are_deterministic_and_distinct() {
        let plan = FaultPlan::seeded(1234);
        let a = plan.unit_roll(0, TAG_DATA, 0);
        assert_eq!(a, plan.unit_roll(0, TAG_DATA, 0), "same inputs, same roll");
        assert_ne!(a, plan.unit_roll(0, TAG_DATA, 1));
        assert_ne!(a, plan.unit_roll(1, TAG_DATA, 0));
        assert_ne!(a, plan.unit_roll(0, TAG_ACK, 0));
        assert_ne!(a, FaultPlan::seeded(1235).unit_roll(0, TAG_DATA, 0));
    }

    #[test]
    fn rolls_are_roughly_uniform() {
        let plan = FaultPlan::seeded(42);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| plan.unit_roll(0, TAG_JITTER, i))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..n).all(|i| {
            let r = plan.unit_roll(3, TAG_DUP, i);
            (0.0..1.0).contains(&r)
        }));
    }

    #[test]
    fn controller_plan_none_is_disabled() {
        let plan = ControllerFaultPlan::none();
        assert!(!plan.enabled());
        assert!(!plan.crash_starts(0) && !plan.is_down(0));
    }

    #[test]
    fn controller_crashes_fire_at_window_starts() {
        let plan = ControllerFaultPlan::none()
            .with_crash(2, 5)
            .with_crash(9, 10);
        assert!(plan.enabled());
        assert!(plan.crash_starts(2) && plan.crash_starts(9));
        assert!(!plan.crash_starts(3), "only the window start kills");
        assert!(plan.is_down(4) && !plan.is_down(5), "half-open window");
    }

    #[test]
    fn partition_plan_none_is_disabled() {
        let plan = PartitionPlan::none();
        assert!(!plan.enabled());
        assert!(!plan.is_partitioned(0));
        assert!(plan.can_reach(Endpoint::Camera(0), Endpoint::Hub, 3));
        assert!(!FaultPlan::ideal().partition().enabled());
        assert!(FaultPlan::seeded(1)
            .with_partition(PartitionPlan::none().with_split(
                vec![vec![Endpoint::Hub], vec![Endpoint::Camera(0)]],
                0,
                1,
            ))
            .enabled());
    }

    #[test]
    fn split_windows_are_half_open_and_symmetric() {
        let plan = PartitionPlan::none().with_split(
            vec![
                vec![Endpoint::Hub, Endpoint::Camera(0)],
                vec![Endpoint::Camera(1), Endpoint::Camera(2)],
            ],
            2,
            4,
        );
        let (hub, c0, c1, c2) = (
            Endpoint::Hub,
            Endpoint::Camera(0),
            Endpoint::Camera(1),
            Endpoint::Camera(2),
        );
        // Outside the window everything flows.
        assert!(plan.can_reach(c1, hub, 1) && plan.can_reach(c1, hub, 4));
        assert!(!plan.is_partitioned(1) && plan.is_partitioned(3));
        // Inside: same island ok, cross-island dead in both directions.
        assert!(plan.can_reach(c0, hub, 2) && plan.can_reach(c1, c2, 3));
        assert!(!plan.can_reach(c1, hub, 2) && !plan.can_reach(hub, c1, 2));
        // Self-delivery is never cut.
        assert!(plan.can_reach(c1, c1, 3));
    }

    #[test]
    fn unlisted_endpoints_are_isolated_singletons() {
        let plan =
            PartitionPlan::none().with_split(vec![vec![Endpoint::Hub, Endpoint::Camera(0)]], 0, 2);
        let c3 = Endpoint::Camera(3);
        assert!(!plan.can_reach(c3, Endpoint::Hub, 0));
        assert!(!plan.can_reach(Endpoint::Hub, c3, 1));
        assert!(!plan.can_reach(c3, Endpoint::Camera(4), 1));
        assert!(plan.can_reach(c3, c3, 1));
        assert!(plan.can_reach(c3, Endpoint::Hub, 2), "window over");
    }

    #[test]
    fn one_way_cuts_are_asymmetric() {
        let plan = PartitionPlan::none().with_one_way(Endpoint::Camera(1), Endpoint::Hub, 5, 7);
        assert!(plan.enabled() && plan.is_partitioned(5));
        assert!(!plan.can_reach(Endpoint::Camera(1), Endpoint::Hub, 5));
        assert!(plan.can_reach(Endpoint::Hub, Endpoint::Camera(1), 5));
        assert!(plan.can_reach(Endpoint::Camera(1), Endpoint::Hub, 7));
    }

    #[test]
    fn flapping_alternates_on_and_off() {
        let islands = vec![vec![Endpoint::Hub], vec![Endpoint::Camera(0)]];
        let plan = PartitionPlan::none().with_flapping(islands, 1, 6, 1);
        // On for [1,2), off [2,3), on [3,4), off [4,5), on [5,6).
        for round in 0..8 {
            let cut = matches!(round, 1 | 3 | 5);
            assert_eq!(
                plan.can_reach(Endpoint::Camera(0), Endpoint::Hub, round),
                !cut,
                "round {round}"
            );
        }
        // A period longer than the window still clamps to the window.
        let wide = PartitionPlan::none().with_flapping(
            vec![vec![Endpoint::Hub], vec![Endpoint::Camera(0)]],
            2,
            4,
            10,
        );
        assert!(wide.is_partitioned(3) && !wide.is_partitioned(4));
    }

    #[test]
    #[should_panic(expected = "two islands")]
    fn overlapping_islands_rejected() {
        PartitionPlan::none().with_split(
            vec![
                vec![Endpoint::Hub, Endpoint::Camera(0)],
                vec![Endpoint::Camera(0)],
            ],
            0,
            1,
        );
    }

    #[test]
    fn corruption_plan_none_is_disabled() {
        let plan = CorruptionPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.rate(), 0.0);
        assert!(!FaultPlan::ideal().corruption().enabled());
        assert!(FaultPlan::seeded(1)
            .with_corruption(CorruptionPlan::with_rate(0.2))
            .enabled());
    }

    #[test]
    fn flip_masks_are_pure_and_distinct() {
        let plan = CorruptionPlan::with_rate(0.5).with_flips(3);
        let mask = plan.flip_mask(42, 1, Endpoint::Hub, 3, 2, 88);
        assert_eq!(
            mask,
            plan.flip_mask(42, 1, Endpoint::Hub, 3, 2, 88),
            "same inputs, same mask"
        );
        assert_eq!(mask.len(), 3);
        let mut dedup = mask.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "positions must be distinct: {mask:?}");
        assert!(mask.iter().all(|&b| b < 88));
        // Every keyed input perturbs the mask.
        assert_ne!(mask, plan.flip_mask(43, 1, Endpoint::Hub, 3, 2, 88));
        assert_ne!(mask, plan.flip_mask(42, 2, Endpoint::Hub, 3, 2, 88));
        assert_ne!(mask, plan.flip_mask(42, 1, Endpoint::Camera(0), 3, 2, 88));
        assert_ne!(mask, plan.flip_mask(42, 1, Endpoint::Hub, 4, 2, 88));
        assert_ne!(mask, plan.flip_mask(42, 1, Endpoint::Hub, 3, 3, 88));
    }

    #[test]
    fn flip_mask_clamps_to_tiny_frames() {
        let plan = CorruptionPlan::with_rate(0.5).with_flips(3);
        let mask = plan.flip_mask(7, 0, Endpoint::Hub, 0, 1, 2);
        assert_eq!(mask.len(), 2, "cannot flip 3 distinct bits of 2");
    }

    #[test]
    #[should_panic(expected = "corruption rate")]
    fn certain_corruption_rejected() {
        CorruptionPlan::with_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "flips must be in 1..=3")]
    fn excessive_flips_rejected() {
        CorruptionPlan::with_rate(0.1).with_flips(4);
    }

    #[test]
    fn churn_plan_ideal_is_disabled_and_all_member() {
        let plan = ChurnPlan::ideal();
        assert!(!plan.enabled());
        assert!(
            !ChurnPlan::seeded(7).enabled(),
            "a bare seed changes nothing"
        );
        for camera in 0..4 {
            for round in 0..20 {
                assert!(plan.is_member(camera, round));
            }
        }
    }

    #[test]
    fn churn_windows_are_half_open_and_per_camera() {
        let plan = ChurnPlan::seeded(3).with_leave(1, 2, 5);
        assert!(plan.enabled());
        assert!(plan.is_member(1, 1));
        assert!(!plan.is_member(1, 2) && !plan.is_member(1, 4));
        assert!(plan.is_member(1, 5), "rejoins at the window end");
        assert!(plan.is_member(0, 3), "absence is per-camera");
    }

    #[test]
    fn late_joins_and_departures() {
        let plan = ChurnPlan::seeded(0).with_join(2, 3).with_depart(0, 6);
        assert!(!plan.is_member(2, 0) && !plan.is_member(2, 2));
        assert!(plan.is_member(2, 3) && plan.is_member(2, 100));
        assert!(plan.is_member(0, 5));
        assert!(!plan.is_member(0, 6) && !plan.is_member(0, 1000));
        // Joining at round 0 is a no-op, not an event.
        assert!(!ChurnPlan::seeded(0).with_join(1, 0).enabled());
    }

    #[test]
    fn leave_rejoin_round_trips_membership() {
        // After every scheduled window has closed, membership equals the
        // starting set — joins, leaves and rejoins cancel out.
        let plan = ChurnPlan::seeded(11)
            .with_join(3, 2)
            .with_leave(0, 1, 4)
            .with_leave(2, 3, 5);
        let before: Vec<bool> = (0..4).map(|j| ChurnPlan::ideal().is_member(j, 0)).collect();
        let after: Vec<bool> = (0..4).map(|j| plan.is_member(j, 10)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn random_absence_is_pure_and_seed_keyed() {
        let plan = ChurnPlan::seeded(42).with_random_absence(0.5, 1);
        assert!(plan.enabled());
        for camera in 0..4 {
            assert!(plan.is_member(camera, 0), "randomness starts at `from`");
            for round in 0..32 {
                assert_eq!(
                    plan.is_member(camera, round),
                    plan.is_member(camera, round),
                    "pure function of (camera, round)"
                );
            }
        }
        // At rate 0.5 over 4×32 draws both outcomes must occur, and a
        // different seed must disagree somewhere.
        let draws: Vec<bool> = (0..4)
            .flat_map(|c| (1..33).map(move |r| (c, r)))
            .map(|(c, r)| plan.is_member(c, r))
            .collect();
        assert!(draws.iter().any(|&m| m) && draws.iter().any(|&m| !m));
        let other = ChurnPlan::seeded(43).with_random_absence(0.5, 1);
        assert!((0..4)
            .flat_map(|c| (1..33).map(move |r| (c, r)))
            .any(|(c, r)| plan.is_member(c, r) != other.is_member(c, r)));
    }

    #[test]
    #[should_panic(expected = "absence rate")]
    fn certain_absence_rejected() {
        let _ = ChurnPlan::seeded(1).with_random_absence(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_churn_window_rejected() {
        let _ = ChurnPlan::seeded(1).with_leave(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "fault probability")]
    fn certain_loss_rejected() {
        LinkFaults::lossy(1.0);
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_window_rejected() {
        Window::new(4, 4);
    }
}
