//! CRC32 (IEEE 802.3, reflected) — the one checksum shared by the wire
//! framing, the verified checkpoint store, and the sweep-manifest
//! journal.
//!
//! The polynomial is the ubiquitous `0xEDB88320` (reflected form of
//! `0x04C11DB7`), table-driven with a compile-time table. Besides the
//! one-shot [`crc32`] there is an incremental [`Crc32`] hasher for
//! callers that assemble their payload in pieces (the checkpoint
//! envelope writes header and payload separately).
//!
//! Error-detection strength matters here, not cryptography: CRC-32 has
//! Hamming distance ≥ 4 for payloads up to 91 607 bits (~11 KB), so on
//! the short frames and records this repo checksums, *any* 1-, 2- or
//! 3-bit corruption is guaranteed to be detected. The corruption chaos
//! plans cap their flip counts accordingly, which is what makes
//! "a corrupt frame is never consumed" a deterministic test property
//! rather than a probabilistic one.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Byte-at-a-time lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 hasher.
///
/// ```
/// use eecs_net::checksum::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (equivalent to having hashed zero bytes).
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far. Non-consuming: a caller
    /// may snapshot an intermediate value and keep updating.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic check value every CRC-32 implementation must hit.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot_for_every_split() {
        let data = b"eecs: energy efficient camera sensor networks";
        let whole = crc32(data);
        for split in 0..=data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn finalize_is_non_consuming() {
        let mut h = Crc32::new();
        h.update(b"12345");
        let mid = h.finalize();
        assert_eq!(mid, crc32(b"12345"));
        h.update(b"6789");
        assert_eq!(h.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        // HD ≥ 4 on short payloads: every 1-bit error changes the CRC.
        let data = b"checkpoint payload under test";
        let clean = crc32(data);
        let mut buf = data.to_vec();
        for bit in 0..buf.len() * 8 {
            buf[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&buf), clean, "bit {bit} slipped through");
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn default_is_fresh() {
        assert_eq!(Crc32::default().finalize(), crc32(b""));
    }
}
