//! Protocol messages, their wire sizes, and the checksummed control
//! frame.
//!
//! Mirrors Fig. 2 of the paper. For *energy accounting* we never
//! serialize full payloads — the model only needs byte counts
//! ([`WireSize`]) — but the reliable path does put a real, checksummed
//! control frame on the simulated wire ([`encode_frame`] /
//! [`decode_frame`]) so that in-flight bit corruption is detectable
//! instead of silently consumed. The frame carries the message *header*
//! fields (type tag plus the integer parameters); bulk payload bytes
//! (features, JPEG crops) stay modeled-by-size as before.
//!
//! Frame layout, all integers little-endian:
//!
//! ```text
//! [0] magic 0xEC   [1] version 0x01   [2] type tag
//! [3..]            per-type u64 fields (0, 1 or 2 of them)
//! [len-4..]        CRC32 of bytes [0, len-4)
//! ```
//!
//! [`decode_frame`] is total over arbitrary byte strings: every
//! malformed input maps to a typed [`NetError`], never a panic — the
//! checksum is verified *first*, so any bit flip surfaces as
//! [`NetError::FrameChecksumMismatch`] before a flipped length or tag
//! byte can be misinterpreted.

use crate::checksum::crc32;
use crate::NetError;
use eecs_energy::comm::{feature_upload_bytes, metadata_bytes};

/// Fixed per-message header: sender id, type tag, sequence number,
/// timestamp.
pub const HEADER_BYTES: u64 = 16;

/// A message on the camera ↔ controller network.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Camera → controller: features of captured key frames
    /// (Section IV-B.1). `frames × feature_dim` f32 values.
    FeatureUpload {
        /// Number of key frames uploaded.
        frames: usize,
        /// Feature dimension per frame.
        feature_dim: usize,
    },
    /// Camera → controller: residual energy / budget report.
    EnergyReport,
    /// Camera → controller: detection metadata for one frame — 172 bytes
    /// per detected object (Section V-A).
    DetectionMetadata {
        /// Number of detected objects in the frame.
        objects: usize,
    },
    /// Camera → controller: a cropped JPEG of the detected region (used for
    /// the final delivery of objects of interest).
    CroppedImage {
        /// Compressed byte count.
        bytes: u64,
    },
    /// Camera → controller: one operation frame's complete result —
    /// detection metadata plus the cropped JPEGs — bundled as a single
    /// delivery unit so the reliability layer acks it atomically. Wire
    /// size equals a [`Message::DetectionMetadata`] plus the crop bytes.
    ObjectDelivery {
        /// Number of detected objects in the frame.
        objects: usize,
        /// Compressed bytes of all cropped regions.
        crop_bytes: u64,
    },
    /// Camera → controller: the sensor failed to capture a usable frame
    /// (dropped capture); carries only a status code so the controller
    /// can tell "no people" apart from "no frame".
    DegradedFrame,
    /// Camera → camera: the sender has taken over the controller seat
    /// after a crash or partition (failover announcement); carries the
    /// new controller's index and its fencing epoch so receivers can
    /// ignore stale seats.
    ControllerHandover {
        /// Index of the camera now acting as controller.
        controller: usize,
        /// Monotonically increasing seat epoch.
        epoch: u64,
    },
    /// Controller → camera: which algorithm to run until recalibration.
    AlgorithmAssignment,
    /// Controller → camera: activate or deactivate the camera.
    ActivationCommand,
    /// Client → mission service: submit one detection mission. The
    /// mission spec itself stays modeled-by-size (like bulk payloads);
    /// the frame carries the batch index and a CRC32 fingerprint of the
    /// spec so the service can detect a spec that mutated in flight.
    MissionSubmit {
        /// Mission index in the submitted batch.
        mission: usize,
        /// CRC32 fingerprint of the canonical mission spec.
        payload_crc: u64,
    },
    /// Mission service → client: the admission verdict for one mission
    /// (0 = accepted; nonzero = the rejection code).
    MissionVerdict {
        /// Mission index in the submitted batch.
        mission: usize,
        /// 0 accepted, 1 queue full, 2 deadline infeasible, 3 invalid
        /// config.
        verdict: u64,
    },
    /// Mission service → client: a completed mission's report digest.
    /// The report body stays modeled-by-size; the frame carries the
    /// CRC32 of the report's canonical JSON bytes for end-to-end
    /// verification.
    MissionReport {
        /// Mission index in the submitted batch.
        mission: usize,
        /// CRC32 of the report's canonical JSON encoding.
        report_crc: u64,
    },
}

/// First byte of every control frame.
pub const FRAME_MAGIC: u8 = 0xEC;
/// Protocol version byte of every control frame.
pub const FRAME_VERSION: u8 = 0x01;
/// Smallest well-formed frame: magic, version, tag, CRC32 trailer.
pub const MIN_FRAME_BYTES: usize = 3 + 4;

/// How many u64 fields a frame of type `tag` carries, or `None` for an
/// unknown tag. Tags are assigned in declaration order of [`Message`].
fn fields_for_tag(tag: u8) -> Option<usize> {
    match tag {
        0 => Some(2),  // FeatureUpload { frames, feature_dim }
        1 => Some(0),  // EnergyReport
        2 => Some(1),  // DetectionMetadata { objects }
        3 => Some(1),  // CroppedImage { bytes }
        4 => Some(2),  // ObjectDelivery { objects, crop_bytes }
        5 => Some(0),  // DegradedFrame
        6 => Some(2),  // ControllerHandover { controller, epoch }
        7 => Some(0),  // AlgorithmAssignment
        8 => Some(0),  // ActivationCommand
        9 => Some(2),  // MissionSubmit { mission, payload_crc }
        10 => Some(2), // MissionVerdict { mission, verdict }
        11 => Some(2), // MissionReport { mission, report_crc }
        _ => None,
    }
}

/// Serializes `message` into a checksummed control frame.
pub fn encode_frame(message: &Message) -> Vec<u8> {
    let (tag, fields): (u8, [u64; 2]) = match message {
        Message::FeatureUpload {
            frames,
            feature_dim,
        } => (0, [*frames as u64, *feature_dim as u64]),
        Message::EnergyReport => (1, [0, 0]),
        Message::DetectionMetadata { objects } => (2, [*objects as u64, 0]),
        Message::CroppedImage { bytes } => (3, [*bytes, 0]),
        Message::ObjectDelivery {
            objects,
            crop_bytes,
        } => (4, [*objects as u64, *crop_bytes]),
        Message::DegradedFrame => (5, [0, 0]),
        Message::ControllerHandover { controller, epoch } => (6, [*controller as u64, *epoch]),
        Message::AlgorithmAssignment => (7, [0, 0]),
        Message::ActivationCommand => (8, [0, 0]),
        Message::MissionSubmit {
            mission,
            payload_crc,
        } => (9, [*mission as u64, *payload_crc]),
        Message::MissionVerdict { mission, verdict } => (10, [*mission as u64, *verdict]),
        Message::MissionReport {
            mission,
            report_crc,
        } => (11, [*mission as u64, *report_crc]),
    };
    let n_fields = fields_for_tag(tag).expect("every variant has a tag");
    let mut buf = Vec::with_capacity(MIN_FRAME_BYTES + 8 * n_fields);
    buf.push(FRAME_MAGIC);
    buf.push(FRAME_VERSION);
    buf.push(tag);
    for field in fields.iter().take(n_fields) {
        buf.extend_from_slice(&field.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses a control frame back into a [`Message`].
///
/// Total over arbitrary input: no decode path panics, allocates
/// unboundedly, or indexes out of range.
///
/// # Errors
///
/// * [`NetError::FrameTooShort`] — fewer than [`MIN_FRAME_BYTES`] bytes,
/// * [`NetError::FrameChecksumMismatch`] — the CRC32 trailer does not
///   match the preceding bytes (checked before anything else is
///   interpreted),
/// * [`NetError::BadFrameHeader`] — wrong magic or version,
/// * [`NetError::UnknownFrameTag`] — a type tag this version lacks,
/// * [`NetError::FrameLengthMismatch`] — a known tag with the wrong
///   number of field bytes.
pub fn decode_frame(frame: &[u8]) -> Result<Message, NetError> {
    if frame.len() < MIN_FRAME_BYTES {
        return Err(NetError::FrameTooShort {
            got: frame.len(),
            needed: MIN_FRAME_BYTES,
        });
    }
    let (body, trailer) = frame.split_at(frame.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().expect("split at len - 4"));
    let actual = crc32(body);
    if expected != actual {
        return Err(NetError::FrameChecksumMismatch { expected, actual });
    }
    if body[0] != FRAME_MAGIC || body[1] != FRAME_VERSION {
        return Err(NetError::BadFrameHeader {
            magic: body[0],
            version: body[1],
        });
    }
    let tag = body[2];
    let Some(n_fields) = fields_for_tag(tag) else {
        return Err(NetError::UnknownFrameTag(tag));
    };
    let field_bytes = &body[3..];
    if field_bytes.len() != 8 * n_fields {
        return Err(NetError::FrameLengthMismatch {
            tag,
            got: field_bytes.len(),
            expected: 8 * n_fields,
        });
    }
    let mut fields = [0u64; 2];
    for (i, chunk) in field_bytes.chunks_exact(8).enumerate() {
        fields[i] = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
    }
    Ok(match tag {
        0 => Message::FeatureUpload {
            frames: fields[0] as usize,
            feature_dim: fields[1] as usize,
        },
        1 => Message::EnergyReport,
        2 => Message::DetectionMetadata {
            objects: fields[0] as usize,
        },
        3 => Message::CroppedImage { bytes: fields[0] },
        4 => Message::ObjectDelivery {
            objects: fields[0] as usize,
            crop_bytes: fields[1],
        },
        5 => Message::DegradedFrame,
        6 => Message::ControllerHandover {
            controller: fields[0] as usize,
            epoch: fields[1],
        },
        7 => Message::AlgorithmAssignment,
        8 => Message::ActivationCommand,
        9 => Message::MissionSubmit {
            mission: fields[0] as usize,
            payload_crc: fields[1],
        },
        10 => Message::MissionVerdict {
            mission: fields[0] as usize,
            verdict: fields[1],
        },
        11 => Message::MissionReport {
            mission: fields[0] as usize,
            report_crc: fields[1],
        },
        _ => unreachable!("fields_for_tag returned Some for this tag"),
    })
}

/// Wire-size accounting for anything sendable.
pub trait WireSize {
    /// Total bytes on the wire, headers included.
    fn wire_bytes(&self) -> u64;
}

impl WireSize for Message {
    fn wire_bytes(&self) -> u64 {
        HEADER_BYTES
            + match self {
                Message::FeatureUpload {
                    frames,
                    feature_dim,
                } => *frames as u64 * feature_upload_bytes(*feature_dim),
                Message::EnergyReport => 8,
                Message::DetectionMetadata { objects } => metadata_bytes(*objects),
                Message::CroppedImage { bytes } => *bytes,
                Message::ObjectDelivery {
                    objects,
                    crop_bytes,
                } => metadata_bytes(*objects) + crop_bytes,
                Message::DegradedFrame => 2,
                Message::ControllerHandover { .. } => 12,
                Message::AlgorithmAssignment => 4,
                Message::ActivationCommand => 1,
                // Two u64 header fields each; payloads modeled-by-size
                // elsewhere.
                Message::MissionSubmit { .. } => 16,
                Message::MissionVerdict { .. } => 9,
                Message::MissionReport { .. } => 12,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_paper_sizes() {
        let m = Message::DetectionMetadata { objects: 2 };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 344);
        let none = Message::DetectionMetadata { objects: 0 };
        assert_eq!(none.wire_bytes(), HEADER_BYTES);
    }

    #[test]
    fn feature_upload_scales_with_frames_and_dim() {
        let m = Message::FeatureUpload {
            frames: 100,
            feature_dim: 4180,
        };
        // ~16 KB per frame → ~1.6 MB for 100 frames.
        let bytes = m.wire_bytes();
        assert!(bytes > 1_600_000 && bytes < 1_700_000, "{bytes}");
    }

    #[test]
    fn control_messages_are_tiny() {
        assert!(Message::AlgorithmAssignment.wire_bytes() < 32);
        assert!(Message::ActivationCommand.wire_bytes() < 32);
        assert!(Message::EnergyReport.wire_bytes() < 32);
        assert!(Message::DegradedFrame.wire_bytes() < 32);
        assert!(
            Message::ControllerHandover {
                controller: 3,
                epoch: 1
            }
            .wire_bytes()
                < 32
        );
    }

    #[test]
    fn cropped_image_passthrough() {
        let m = Message::CroppedImage { bytes: 5000 };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 5000);
    }

    #[test]
    fn object_delivery_bundles_metadata_and_crops() {
        let bundled = Message::ObjectDelivery {
            objects: 2,
            crop_bytes: 5000,
        };
        let split = Message::DetectionMetadata { objects: 2 }.wire_bytes() + 5000;
        assert_eq!(bundled.wire_bytes(), split);
    }

    fn all_variants() -> Vec<Message> {
        vec![
            Message::FeatureUpload {
                frames: 100,
                feature_dim: 4180,
            },
            Message::EnergyReport,
            Message::DetectionMetadata { objects: 3 },
            Message::CroppedImage { bytes: 5000 },
            Message::ObjectDelivery {
                objects: 2,
                crop_bytes: 7777,
            },
            Message::DegradedFrame,
            Message::ControllerHandover {
                controller: 3,
                epoch: 9,
            },
            Message::AlgorithmAssignment,
            Message::ActivationCommand,
            Message::MissionSubmit {
                mission: 4,
                payload_crc: 0xDEAD_BEEF,
            },
            Message::MissionVerdict {
                mission: 4,
                verdict: 2,
            },
            Message::MissionReport {
                mission: 4,
                report_crc: 0xCAFE_F00D,
            },
        ]
    }

    #[test]
    fn mission_control_messages_are_tiny() {
        let submit = Message::MissionSubmit {
            mission: 1,
            payload_crc: u64::from(u32::MAX),
        };
        let verdict = Message::MissionVerdict {
            mission: 1,
            verdict: 3,
        };
        let report = Message::MissionReport {
            mission: 1,
            report_crc: 7,
        };
        for m in [submit, verdict, report] {
            assert!(m.wire_bytes() < 64, "{m:?}");
        }
    }

    #[test]
    fn frames_round_trip_every_variant() {
        for msg in all_variants() {
            let frame = encode_frame(&msg);
            assert!(frame.len() >= MIN_FRAME_BYTES);
            assert_eq!(frame[0], FRAME_MAGIC);
            assert_eq!(frame[1], FRAME_VERSION);
            assert_eq!(decode_frame(&frame).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for msg in all_variants() {
            let clean = encode_frame(&msg);
            let mut frame = clean.clone();
            for bit in 0..frame.len() * 8 {
                frame[bit / 8] ^= 1 << (bit % 8);
                assert!(
                    decode_frame(&frame).is_err(),
                    "{msg:?}: flipped bit {bit} was consumed"
                );
                frame[bit / 8] ^= 1 << (bit % 8);
            }
            assert_eq!(frame, clean);
        }
    }

    #[test]
    fn decode_errors_are_typed() {
        assert!(matches!(
            decode_frame(&[]),
            Err(NetError::FrameTooShort { got: 0, needed: 7 })
        ));
        assert!(matches!(
            decode_frame(&[0xEC, 1, 1, 0, 0, 0]),
            Err(NetError::FrameTooShort { .. })
        ));

        // A frame with a valid CRC but a wrong header/tag/length: build
        // the body by hand and append its real checksum.
        let stamp = |body: &[u8]| {
            let mut f = body.to_vec();
            f.extend_from_slice(&crc32(body).to_le_bytes());
            f
        };
        assert!(matches!(
            decode_frame(&stamp(&[0x00, 0x01, 1])),
            Err(NetError::BadFrameHeader { magic: 0, .. })
        ));
        assert!(matches!(
            decode_frame(&stamp(&[0xEC, 0x7F, 1])),
            Err(NetError::BadFrameHeader { version: 0x7F, .. })
        ));
        assert!(matches!(
            decode_frame(&stamp(&[0xEC, 0x01, 99])),
            Err(NetError::UnknownFrameTag(99))
        ));
        assert!(matches!(
            decode_frame(&stamp(&[0xEC, 0x01, 2, 0, 0])),
            Err(NetError::FrameLengthMismatch {
                tag: 2,
                got: 2,
                expected: 8,
            })
        ));

        // And a flipped payload byte fails the checksum before any of
        // the above interpretations run.
        let mut frame = encode_frame(&Message::EnergyReport);
        frame[2] ^= 0x10;
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::FrameChecksumMismatch { .. })
        ));
    }
}
