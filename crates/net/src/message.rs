//! Protocol messages and their wire sizes.
//!
//! Mirrors Fig. 2 of the paper. We never serialize actual payloads — the
//! energy model only needs byte counts — but every variant's size follows
//! the paper's stated formats.

use eecs_energy::comm::{feature_upload_bytes, metadata_bytes};

/// Fixed per-message header: sender id, type tag, sequence number,
/// timestamp.
pub const HEADER_BYTES: u64 = 16;

/// A message on the camera ↔ controller network.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Camera → controller: features of captured key frames
    /// (Section IV-B.1). `frames × feature_dim` f32 values.
    FeatureUpload {
        /// Number of key frames uploaded.
        frames: usize,
        /// Feature dimension per frame.
        feature_dim: usize,
    },
    /// Camera → controller: residual energy / budget report.
    EnergyReport,
    /// Camera → controller: detection metadata for one frame — 172 bytes
    /// per detected object (Section V-A).
    DetectionMetadata {
        /// Number of detected objects in the frame.
        objects: usize,
    },
    /// Camera → controller: a cropped JPEG of the detected region (used for
    /// the final delivery of objects of interest).
    CroppedImage {
        /// Compressed byte count.
        bytes: u64,
    },
    /// Camera → controller: one operation frame's complete result —
    /// detection metadata plus the cropped JPEGs — bundled as a single
    /// delivery unit so the reliability layer acks it atomically. Wire
    /// size equals a [`Message::DetectionMetadata`] plus the crop bytes.
    ObjectDelivery {
        /// Number of detected objects in the frame.
        objects: usize,
        /// Compressed bytes of all cropped regions.
        crop_bytes: u64,
    },
    /// Camera → controller: the sensor failed to capture a usable frame
    /// (dropped capture); carries only a status code so the controller
    /// can tell "no people" apart from "no frame".
    DegradedFrame,
    /// Camera → camera: the sender has taken over the controller seat
    /// after a crash or partition (failover announcement); carries the
    /// new controller's index and its fencing epoch so receivers can
    /// ignore stale seats.
    ControllerHandover {
        /// Index of the camera now acting as controller.
        controller: usize,
        /// Monotonically increasing seat epoch.
        epoch: u64,
    },
    /// Controller → camera: which algorithm to run until recalibration.
    AlgorithmAssignment,
    /// Controller → camera: activate or deactivate the camera.
    ActivationCommand,
}

/// Wire-size accounting for anything sendable.
pub trait WireSize {
    /// Total bytes on the wire, headers included.
    fn wire_bytes(&self) -> u64;
}

impl WireSize for Message {
    fn wire_bytes(&self) -> u64 {
        HEADER_BYTES
            + match self {
                Message::FeatureUpload {
                    frames,
                    feature_dim,
                } => *frames as u64 * feature_upload_bytes(*feature_dim),
                Message::EnergyReport => 8,
                Message::DetectionMetadata { objects } => metadata_bytes(*objects),
                Message::CroppedImage { bytes } => *bytes,
                Message::ObjectDelivery {
                    objects,
                    crop_bytes,
                } => metadata_bytes(*objects) + crop_bytes,
                Message::DegradedFrame => 2,
                Message::ControllerHandover { .. } => 12,
                Message::AlgorithmAssignment => 4,
                Message::ActivationCommand => 1,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_paper_sizes() {
        let m = Message::DetectionMetadata { objects: 2 };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 344);
        let none = Message::DetectionMetadata { objects: 0 };
        assert_eq!(none.wire_bytes(), HEADER_BYTES);
    }

    #[test]
    fn feature_upload_scales_with_frames_and_dim() {
        let m = Message::FeatureUpload {
            frames: 100,
            feature_dim: 4180,
        };
        // ~16 KB per frame → ~1.6 MB for 100 frames.
        let bytes = m.wire_bytes();
        assert!(bytes > 1_600_000 && bytes < 1_700_000, "{bytes}");
    }

    #[test]
    fn control_messages_are_tiny() {
        assert!(Message::AlgorithmAssignment.wire_bytes() < 32);
        assert!(Message::ActivationCommand.wire_bytes() < 32);
        assert!(Message::EnergyReport.wire_bytes() < 32);
        assert!(Message::DegradedFrame.wire_bytes() < 32);
        assert!(
            Message::ControllerHandover {
                controller: 3,
                epoch: 1
            }
            .wire_bytes()
                < 32
        );
    }

    #[test]
    fn cropped_image_passthrough() {
        let m = Message::CroppedImage { bytes: 5000 };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 5000);
    }

    #[test]
    fn object_delivery_bundles_metadata_and_crops() {
        let bundled = Message::ObjectDelivery {
            objects: 2,
            crop_bytes: 5000,
        };
        let split = Message::DetectionMetadata { objects: 2 }.wire_bytes() + 5000;
        assert_eq!(bundled.wire_bytes(), split);
    }
}
