//! The simulated wireless network between camera sensors and the
//! controller.
//!
//! The paper's testbed used WiFi between Android phones and a Linux server
//! (Fig. 2 shows the message flows). EECS touches the network only through
//! message *sizes* and the energy/time they cost, so this crate provides:
//!
//! * [`message`] — the protocol messages of Fig. 2 (feature uploads, energy
//!   reports, detection metadata, algorithm assignments) with exact wire
//!   sizes (172 B per detected object, 4 B per feature value, …),
//! * [`transport`] — an in-memory star network that delivers messages to
//!   the controller, charges the sender's battery through the device/link
//!   models, and keeps delivery statistics.

pub mod message;
pub mod transport;

pub use message::{Message, WireSize};
pub use transport::{Network, TransportStats};

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The addressed node does not exist.
    UnknownNode(usize),
    /// The sender's battery could not cover the transmission.
    SendFailed(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::SendFailed(msg) => write!(f, "send failed: {msg}"),
        }
    }
}

impl Error for NetError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(NetError::UnknownNode(3).to_string().contains('3'));
    }
}
