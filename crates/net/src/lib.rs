//! The simulated wireless network between camera sensors and the
//! controller.
//!
//! The paper's testbed used WiFi between Android phones and a Linux server
//! (Fig. 2 shows the message flows). EECS touches the network only through
//! message *sizes* and the energy/time they cost, so this crate provides:
//!
//! * [`message`] — the protocol messages of Fig. 2 (feature uploads, energy
//!   reports, detection metadata, algorithm assignments) with exact wire
//!   sizes (172 B per detected object, 4 B per feature value, …),
//! * [`transport`] — an in-memory star network that delivers messages to
//!   the controller, charges the sender's battery through the device/link
//!   models, and keeps delivery statistics,
//! * [`fault`] — a seeded, deterministic [`FaultPlan`] injecting packet
//!   loss, delay/jitter, duplication, reordering, link outages, and
//!   camera crash windows,
//! * [`reliable`] — the ack/retry policy and per-send [`Delivery`]
//!   outcome of the transport's reliable path.

pub mod checksum;
pub mod fault;
pub mod message;
pub mod reliable;
pub mod transport;

pub use fault::{
    ChurnPlan, ControllerFaultPlan, CorruptionPlan, Endpoint, FaultPlan, LinkFaults, PartitionPlan,
    Window,
};
pub use message::{Message, WireSize};
pub use reliable::{Delivery, RetryPolicy};
pub use transport::{Network, TransportStats};

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The addressed node does not exist.
    UnknownNode(usize),
    /// The sender's battery could not cover the transmission.
    SendFailed {
        /// Energy one attempt needed (J).
        needed_j: f64,
        /// Energy the battery had left (J).
        available_j: f64,
    },
    /// A wire frame was shorter than the minimum a header and CRC
    /// trailer require.
    FrameTooShort {
        /// Bytes actually received.
        got: usize,
        /// Minimum bytes a well-formed frame needs.
        needed: usize,
    },
    /// The frame's CRC32 trailer does not match its contents — the
    /// payload was corrupted in flight (or at rest).
    FrameChecksumMismatch {
        /// Checksum the trailer claimed.
        expected: u32,
        /// Checksum the received bytes actually hash to.
        actual: u32,
    },
    /// The frame's magic byte or protocol version is not ours.
    BadFrameHeader {
        /// First byte of the frame (must be the protocol magic).
        magic: u8,
        /// Second byte of the frame (must be the protocol version).
        version: u8,
    },
    /// The frame names a message type this protocol version does not
    /// define.
    UnknownFrameTag(u8),
    /// The frame's length does not match what its message type
    /// requires.
    FrameLengthMismatch {
        /// The frame's message-type tag.
        tag: u8,
        /// Bytes the frame actually holds.
        got: usize,
        /// Bytes a frame of this type must hold.
        expected: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::SendFailed {
                needed_j,
                available_j,
            } => write!(
                f,
                "send failed: battery exhausted: requested {needed_j:.3} J, \
                 remaining {available_j:.3} J"
            ),
            NetError::FrameTooShort { got, needed } => {
                write!(f, "frame too short: {got} bytes, need at least {needed}")
            }
            NetError::FrameChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: trailer {expected:#010x}, computed {actual:#010x}"
            ),
            NetError::BadFrameHeader { magic, version } => {
                write!(f, "bad frame header: magic {magic:#04x}, version {version}")
            }
            NetError::UnknownFrameTag(tag) => write!(f, "unknown frame tag {tag}"),
            NetError::FrameLengthMismatch { tag, got, expected } => write!(
                f,
                "frame length mismatch for tag {tag}: {got} bytes, expected {expected}"
            ),
        }
    }
}

impl Error for NetError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(NetError::UnknownNode(3).to_string().contains('3'));
        let e = NetError::SendFailed {
            needed_j: 1.25,
            available_j: 0.5,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("send failed: "), "{msg}");
        assert!(msg.contains("1.250") && msg.contains("0.500"), "{msg}");
        let _: &dyn Error = &e;
    }
}
