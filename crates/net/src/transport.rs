//! The in-memory star network.
//!
//! Cameras are leaves, the controller is the hub. Sending charges the
//! sender's battery through its link and device models and records
//! delivery statistics; delivered messages land in the controller's inbox
//! in send order.
//!
//! Two send paths exist:
//!
//! * [`Network::send`] — the raw physical-layer primitive: one attempt,
//!   no faults, no acknowledgement. Kept for components that account
//!   energy for an idealized transmission.
//! * [`Network::send_reliable`] — the transport the simulation uses: the
//!   configured [`FaultPlan`] may drop, delay, duplicate or reorder each
//!   attempt, and a stop-and-wait ARQ ([`RetryPolicy`]) retries
//!   unacknowledged messages with exponential backoff. Every attempt —
//!   successful or not — drains the sender's battery.
//!
//! The controller's downlink ([`Network::send_downlink`]) runs the same
//! ARQ but charges no camera battery: the controller is mains-powered
//! and receive energy is not modeled (matching the uplink, where the
//! controller's receive side is also free).
//!
//! Time advances in simulation rounds via [`Network::advance_round`],
//! which matures delayed deliveries into the inbox.

use std::collections::BTreeSet;

use crate::fault::{
    Endpoint, FaultPlan, TAG_ACK, TAG_CORRUPT, TAG_DATA, TAG_DUP, TAG_JITTER, TAG_REORDER,
};
use crate::message::{decode_frame, encode_frame, Message, WireSize};
use crate::reliable::{Delivery, RetryPolicy};
use crate::{NetError, Result};
use eecs_energy::budget::BatteryState;
use eecs_energy::comm::LinkModel;
use eecs_energy::meter::{EnergyCategory, PowerMeter};
use eecs_energy::model::DeviceEnergyModel;
use eecs_energy::EnergyError;

/// Per-node delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportStats {
    /// Messages delivered and acknowledged end-to-end.
    pub messages: u64,
    /// Bytes put on the wire, failed attempts included.
    pub bytes: u64,
    /// Radio energy spent (J), failed attempts included.
    pub energy_j: f64,
    /// Cumulative air time (s), failed attempts included.
    pub airtime_s: f64,
    /// Transmission attempts, including drops and retries.
    pub attempts: u64,
    /// Attempts whose data was lost in transit.
    pub drops: u64,
    /// Re-attempts made after a missing acknowledgement.
    pub retries: u64,
    /// Sends that exhausted the retry cap without an acknowledgement
    /// (plus sends refused outright because the sender was crashed).
    pub timeouts: u64,
    /// Duplicate copies suppressed at the controller inbox.
    pub duplicates: u64,
    /// Attempts whose frame was bit-corrupted in flight (the
    /// [`crate::CorruptionPlan`] fired on a delivered attempt).
    pub corrupted: u64,
    /// Frames the receiver rejected on checksum verification. Equals
    /// `corrupted` as long as every corruption is detected — which the
    /// ≤ 3-bit flip cap guarantees (see [`crate::checksum`]).
    pub rejected: u64,
    /// Total backoff time spent waiting between retries (s).
    pub backoff_s: f64,
}

impl TransportStats {
    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &TransportStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.energy_j += other.energy_j;
        self.airtime_s += other.airtime_s;
        self.attempts += other.attempts;
        self.drops += other.drops;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.duplicates += other.duplicates;
        self.corrupted += other.corrupted;
        self.rejected += other.rejected;
        self.backoff_s += other.backoff_s;
    }

    /// The integer fields with stable names, in declaration order — the
    /// shape a metrics registry scrapes into counters.
    ///
    /// The corruption counters appear only when nonzero: runs without a
    /// corruption plan scrape (and serialize) exactly the pre-corruption
    /// field set, keeping their golden masters byte-identical.
    pub fn counter_fields(&self) -> Vec<(&'static str, u64)> {
        let mut fields = vec![
            ("messages", self.messages),
            ("bytes", self.bytes),
            ("attempts", self.attempts),
            ("drops", self.drops),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("duplicates", self.duplicates),
        ];
        if self.corrupted > 0 {
            fields.push(("corrupted", self.corrupted));
        }
        if self.rejected > 0 {
            fields.push(("rejected", self.rejected));
        }
        fields
    }

    /// The float fields (Joules, seconds) with stable names, in
    /// declaration order — the shape a metrics registry scrapes into
    /// gauges.
    pub fn gauge_fields(&self) -> [(&'static str, f64); 3] {
        [
            ("energy_j", self.energy_j),
            ("airtime_s", self.airtime_s),
            ("backoff_s", self.backoff_s),
        ]
    }
}

/// One camera's attachment point.
#[derive(Debug, Clone)]
struct Node {
    link: LinkModel,
    device: DeviceEnergyModel,
    stats: TransportStats,
    /// Whether the camera is currently attached to the network. A
    /// detached node (a camera that left the fleet) behaves exactly
    /// like a crashed one — no sends, no receives, no energy — but its
    /// identity (stats, sequence numbers) survives for a later rejoin.
    attached: bool,
    /// Next uplink sequence number this camera will use.
    next_seq: u64,
    /// Sequence numbers already accepted into the inbox (duplicate
    /// suppression).
    delivered_seqs: BTreeSet<u64>,
}

impl Node {
    fn new(link: LinkModel, device: DeviceEnergyModel) -> Node {
        Node {
            link,
            device,
            stats: TransportStats::default(),
            attached: true,
            next_seq: 0,
            delivered_seqs: BTreeSet::new(),
        }
    }
}

/// A delivery held back by link delay/jitter until its round comes up.
#[derive(Debug, Clone)]
struct PendingDelivery {
    due_round: usize,
    from: usize,
    message: Message,
}

/// The star network: `n` camera nodes and a controller inbox.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    plan: FaultPlan,
    retry: RetryPolicy,
    /// Current simulation round (drives outage/crash windows and delays).
    round: usize,
    /// Whether the controller (hub) is currently dead: uplinks get no
    /// ack (one probe attempt, like an outage) and the downlink is
    /// silent. Set by the simulation during a controller crash, cleared
    /// when a camera takes over the seat.
    controller_down: bool,
    /// Monotone event counter feeding the plan's deterministic rolls.
    rolls: u64,
    /// Next downlink sequence number.
    next_downlink_seq: u64,
    /// Controller-side (downlink) statistics; no camera battery is
    /// involved, so `energy_j`/`airtime_s` stay zero.
    downlink_stats: TransportStats,
    inbox: Vec<(usize, Message)>,
    pending: Vec<PendingDelivery>,
}

impl Network {
    /// Creates a network of `cameras` identical nodes with an ideal
    /// (fault-free) plan and the default retry policy.
    pub fn new(cameras: usize, link: LinkModel, device: DeviceEnergyModel) -> Network {
        Network::with_nodes(vec![(link, device); cameras])
    }

    /// Creates a network from per-camera `(link, device)` pairs, for
    /// heterogeneous rigs.
    pub fn with_nodes(nodes: Vec<(LinkModel, DeviceEnergyModel)>) -> Network {
        Network {
            nodes: nodes
                .into_iter()
                .map(|(link, device)| Node::new(link, device))
                .collect(),
            plan: FaultPlan::ideal(),
            retry: RetryPolicy::default(),
            round: 0,
            controller_down: false,
            rolls: 0,
            next_downlink_seq: 0,
            downlink_stats: TransportStats::default(),
            inbox: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Installs `plan` as the network's fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Network {
        self.plan = plan;
        self
    }

    /// Installs `retry` as the reliable-path retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Network {
        self.retry = retry;
        self
    }

    /// Number of camera nodes.
    pub fn cameras(&self) -> usize {
        self.nodes.len()
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The installed retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The current simulation round.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Advances to the next simulation round: outage/crash windows move
    /// on, and delayed deliveries whose time has come mature into the
    /// inbox (in age order).
    pub fn advance_round(&mut self) {
        self.round += 1;
        let round = self.round;
        let mut still_pending = Vec::new();
        for p in std::mem::take(&mut self.pending) {
            if p.due_round <= round {
                self.push_inbox(p.from, p.message);
            } else {
                still_pending.push(p);
            }
        }
        self.pending = still_pending;
    }

    /// Whether `camera` is dark in the current round: crashed
    /// (unpowered) per the fault plan, or detached from the fleet.
    pub fn is_camera_down(&self, camera: usize) -> bool {
        self.plan.is_crashed(camera, self.round)
            || self.nodes.get(camera).is_some_and(|n| !n.attached)
    }

    /// Adds a fresh endpoint for a new camera on a live network,
    /// returning its index. The newcomer starts attached with zeroed
    /// statistics and sequence numbers.
    pub fn add_endpoint(&mut self, link: LinkModel, device: DeviceEnergyModel) -> usize {
        self.nodes.push(Node::new(link, device));
        self.nodes.len() - 1
    }

    /// Attaches or detaches camera `id`. Detaching models a fleet
    /// departure: the radio goes dark (every path treats the node as
    /// crashed) but its identity survives, so a later re-attach resumes
    /// the same sequence space and statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn set_attached(&mut self, id: usize, attached: bool) -> Result<()> {
        self.nodes
            .get_mut(id)
            .map(|n| n.attached = attached)
            .ok_or(NetError::UnknownNode(id))
    }

    /// Whether camera `id` is currently attached (an out-of-range index
    /// is simply not attached).
    pub fn is_attached(&self, id: usize) -> bool {
        self.nodes.get(id).is_some_and(|n| n.attached)
    }

    /// Marks the controller (hub) dead or alive. While dead, every
    /// uplink behaves like an outage — one probe attempt, no ack — and
    /// downlinks time out without an attempt.
    pub fn set_controller_down(&mut self, down: bool) {
        self.controller_down = down;
    }

    /// Whether the controller is currently marked dead.
    pub fn controller_down(&self) -> bool {
        self.controller_down
    }

    /// Sends `message` from camera `from`, draining `battery` for the
    /// radio energy. This is the raw single-attempt primitive: the fault
    /// plan does not apply and no acknowledgement is involved.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] for a bad index,
    /// * [`NetError::SendFailed`] when the battery cannot cover the
    ///   transmission (nothing is sent or charged).
    pub fn send(
        &mut self,
        from: usize,
        message: Message,
        battery: &mut BatteryState,
        meter: &mut PowerMeter,
    ) -> Result<()> {
        let node = self
            .nodes
            .get_mut(from)
            .ok_or(NetError::UnknownNode(from))?;
        let bytes = message.wire_bytes();
        let energy = node.link.transmit_energy(bytes, &node.device);
        battery.drain(energy).map_err(send_failed)?;
        meter.record(EnergyCategory::Communication, energy);
        node.stats.messages += 1;
        node.stats.attempts += 1;
        node.stats.bytes += bytes;
        node.stats.energy_j += energy;
        node.stats.airtime_s += node.link.transfer_time(bytes);
        self.inbox.push((from, message));
        Ok(())
    }

    /// Sends `message` from camera `from` through the fault plan with
    /// ack/retry semantics, draining `battery` once per attempt.
    ///
    /// The returned [`Delivery`] reports what actually happened:
    /// `delivered` (some copy reached the inbox, possibly delayed),
    /// `acked` (the sender heard an ack), attempts, and backoff time. A
    /// crashed sender makes no attempt and spends no energy; a link in
    /// outage burns exactly one probe attempt.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] for a bad index,
    /// * [`NetError::SendFailed`] when the battery dies mid-sequence —
    ///   earlier attempts remain charged and an already-delivered copy
    ///   stays in the inbox.
    pub fn send_reliable(
        &mut self,
        from: usize,
        message: Message,
        battery: &mut BatteryState,
        meter: &mut PowerMeter,
    ) -> Result<Delivery> {
        self.send_reliable_to(from, Endpoint::Hub, message, battery, meter)
    }

    /// [`Network::send_reliable`] with an explicit destination seat: the
    /// hub, or a camera acting as controller after a failover. The
    /// partition plan is checked against the actual `from → target`
    /// direction, so an uplink to an island-local acting seat keeps
    /// working while the hub is unreachable. A partitioned target looks
    /// exactly like an outage: one probe attempt, then give up.
    ///
    /// # Errors
    ///
    /// See [`Network::send_reliable`].
    pub fn send_reliable_to(
        &mut self,
        from: usize,
        target: Endpoint,
        message: Message,
        battery: &mut BatteryState,
        meter: &mut PowerMeter,
    ) -> Result<Delivery> {
        if from >= self.nodes.len() {
            return Err(NetError::UnknownNode(from));
        }
        let seq = self.nodes[from].next_seq;
        self.nodes[from].next_seq += 1;
        let mut delivery = Delivery::pending(seq);

        if self.is_camera_down(from) {
            self.nodes[from].stats.timeouts += 1;
            return Ok(delivery);
        }

        let bytes = message.wire_bytes();
        let faults = self.plan.faults(from);
        // A dead controller looks exactly like an outage from the
        // camera's side: the probe goes unanswered. So does a partition
        // between the sender and its seat.
        let outage = self.plan.is_outage(from, self.round)
            || self.controller_down
            || !self
                .plan
                .partition()
                .can_reach(Endpoint::Camera(from), target, self.round);
        // During an outage the channel is deterministically dead for the
        // round, and the MAC layer notices (no association, no ack to the
        // first probe): one attempt, then give up until next round.
        let max_attempts: u64 = if outage {
            1
        } else {
            u64::from(self.retry.max_retries).saturating_add(1)
        };

        loop {
            if delivery.attempts > 0 {
                let backoff = self.retry.backoff_before_attempt(delivery.attempts + 1);
                delivery.backoff_s += backoff;
                self.nodes[from].stats.retries += 1;
                self.nodes[from].stats.backoff_s += backoff;
            }
            let node = &mut self.nodes[from];
            let energy = node.link.transmit_energy(bytes, &node.device);
            battery.drain(energy).map_err(send_failed)?;
            meter.record(EnergyCategory::Communication, energy);
            node.stats.attempts += 1;
            node.stats.bytes += bytes;
            node.stats.energy_j += energy;
            node.stats.airtime_s += node.link.transfer_time(bytes);
            delivery.attempts += 1;

            let data_lost =
                outage || (faults.loss > 0.0 && self.roll(from, TAG_DATA) < faults.loss);
            if data_lost {
                self.nodes[from].stats.drops += 1;
            } else if self.corrupt_attempt(from, target, &message, delivery.attempts) {
                // The frame arrived, but wrong: the receiver's checksum
                // rejects it, no ack comes back, and the ARQ retries.
                // The attempt's energy (charged above) stays spent.
                delivery.corrupted += 1;
                self.nodes[from].stats.corrupted += 1;
                self.nodes[from].stats.rejected += 1;
            } else {
                if self.nodes[from].delivered_seqs.insert(seq) {
                    // First copy to arrive: admit it, after any delay.
                    delivery.delivered = true;
                    let mut delay = faults.delay_rounds;
                    if faults.jitter_rounds > 0 {
                        let draw = self.roll(from, TAG_JITTER);
                        delay += (draw * (faults.jitter_rounds + 1) as f64) as usize;
                    }
                    delivery.delayed_rounds = delay;
                    self.admit(from, message.clone(), delay);
                    // The network itself may duplicate the packet; the
                    // extra copy carries the same seq and is suppressed.
                    if faults.duplicate > 0.0 && self.roll(from, TAG_DUP) < faults.duplicate {
                        self.nodes[from].stats.duplicates += 1;
                    }
                } else {
                    // Retransmission of a seq the inbox already has
                    // (its ack was lost): suppress.
                    self.nodes[from].stats.duplicates += 1;
                }
                let ack_lost = faults.loss > 0.0 && self.roll(from, TAG_ACK) < faults.loss;
                if !ack_lost {
                    delivery.acked = true;
                    self.nodes[from].stats.messages += 1;
                    return Ok(delivery);
                }
            }
            if u64::from(delivery.attempts) >= max_attempts {
                self.nodes[from].stats.timeouts += 1;
                return Ok(delivery);
            }
        }
    }

    /// Sends `message` from the controller to camera `to` with the same
    /// ARQ semantics as [`Network::send_reliable`], but charging no
    /// battery: the controller is mains-powered. A crashed camera cannot
    /// receive; check [`Delivery::delivered`] before applying the
    /// message's effect. Outcomes accumulate in
    /// [`Network::downlink_stats`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn send_downlink(&mut self, to: usize, message: Message) -> Result<Delivery> {
        if to >= self.nodes.len() {
            return Err(NetError::UnknownNode(to));
        }
        let seq = self.next_downlink_seq;
        self.next_downlink_seq += 1;
        let mut delivery = Delivery::pending(seq);

        if self.controller_down {
            // A dead controller transmits nothing.
            self.downlink_stats.timeouts += 1;
            return Ok(delivery);
        }
        if self.is_camera_down(to) {
            self.downlink_stats.timeouts += 1;
            return Ok(delivery);
        }

        let bytes = message.wire_bytes();
        let faults = self.plan.faults(to);
        let outage = self.plan.is_outage(to, self.round)
            || !self
                .plan
                .partition()
                .can_reach(Endpoint::Hub, Endpoint::Camera(to), self.round);

        let max_attempts: u64 = if outage {
            1
        } else {
            u64::from(self.retry.max_retries).saturating_add(1)
        };

        loop {
            if delivery.attempts > 0 {
                let backoff = self.retry.backoff_before_attempt(delivery.attempts + 1);
                delivery.backoff_s += backoff;
                self.downlink_stats.retries += 1;
                self.downlink_stats.backoff_s += backoff;
            }
            self.downlink_stats.attempts += 1;
            self.downlink_stats.bytes += bytes;
            delivery.attempts += 1;

            let data_lost = outage || (faults.loss > 0.0 && self.roll(to, TAG_DATA) < faults.loss);
            if data_lost {
                self.downlink_stats.drops += 1;
            } else if self.corrupt_attempt(to, Endpoint::Camera(to), &message, delivery.attempts) {
                delivery.corrupted += 1;
                self.downlink_stats.corrupted += 1;
                self.downlink_stats.rejected += 1;
            } else {
                if delivery.delivered {
                    // The camera already has this seq; the repeat is
                    // suppressed on its side.
                    self.downlink_stats.duplicates += 1;
                }
                delivery.delivered = true;
                let ack_lost = faults.loss > 0.0 && self.roll(to, TAG_ACK) < faults.loss;
                if !ack_lost {
                    delivery.acked = true;
                    self.downlink_stats.messages += 1;
                    return Ok(delivery);
                }
            }
            if u64::from(delivery.attempts) >= max_attempts {
                self.downlink_stats.timeouts += 1;
                return Ok(delivery);
            }
        }
    }

    /// Sends `message` camera-to-camera (the failover announcement path:
    /// the newly elected controller tells each peer about the handover).
    /// Charges `battery` — the *sender's* — once per attempt, exactly
    /// like [`Network::send_reliable`], but the message never enters the
    /// controller inbox: it terminates at the peer. The sender's link
    /// faults govern loss; a crashed or outaged peer soaks up one probe
    /// attempt, a crashed sender makes none.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] for a bad index on either end,
    /// * [`NetError::SendFailed`] when the battery dies mid-sequence.
    pub fn send_peer(
        &mut self,
        from: usize,
        to: usize,
        message: Message,
        battery: &mut BatteryState,
        meter: &mut PowerMeter,
    ) -> Result<Delivery> {
        if from >= self.nodes.len() {
            return Err(NetError::UnknownNode(from));
        }
        if to >= self.nodes.len() {
            return Err(NetError::UnknownNode(to));
        }
        let seq = self.nodes[from].next_seq;
        self.nodes[from].next_seq += 1;
        let mut delivery = Delivery::pending(seq);

        if self.is_camera_down(from) {
            self.nodes[from].stats.timeouts += 1;
            return Ok(delivery);
        }

        let bytes = message.wire_bytes();
        let faults = self.plan.faults(from);
        // A dead or outaged peer cannot respond; either end's outage
        // window — or a partition between the two cameras — kills the
        // channel for the round.
        let peer_dark = self.is_camera_down(to)
            || self.plan.is_outage(from, self.round)
            || self.plan.is_outage(to, self.round)
            || !self.plan.partition().can_reach(
                Endpoint::Camera(from),
                Endpoint::Camera(to),
                self.round,
            );
        let max_attempts: u64 = if peer_dark {
            1
        } else {
            u64::from(self.retry.max_retries).saturating_add(1)
        };

        loop {
            if delivery.attempts > 0 {
                let backoff = self.retry.backoff_before_attempt(delivery.attempts + 1);
                delivery.backoff_s += backoff;
                self.nodes[from].stats.retries += 1;
                self.nodes[from].stats.backoff_s += backoff;
            }
            let node = &mut self.nodes[from];
            let energy = node.link.transmit_energy(bytes, &node.device);
            battery.drain(energy).map_err(send_failed)?;
            meter.record(EnergyCategory::Communication, energy);
            node.stats.attempts += 1;
            node.stats.bytes += bytes;
            node.stats.energy_j += energy;
            node.stats.airtime_s += node.link.transfer_time(bytes);
            delivery.attempts += 1;

            let data_lost =
                peer_dark || (faults.loss > 0.0 && self.roll(from, TAG_DATA) < faults.loss);
            if data_lost {
                self.nodes[from].stats.drops += 1;
            } else if self.corrupt_attempt(from, Endpoint::Camera(to), &message, delivery.attempts)
            {
                delivery.corrupted += 1;
                self.nodes[from].stats.corrupted += 1;
                self.nodes[from].stats.rejected += 1;
            } else {
                delivery.delivered = true;
                let ack_lost = faults.loss > 0.0 && self.roll(from, TAG_ACK) < faults.loss;
                if !ack_lost {
                    delivery.acked = true;
                    self.nodes[from].stats.messages += 1;
                    return Ok(delivery);
                }
            }
            if u64::from(delivery.attempts) >= max_attempts {
                self.nodes[from].stats.timeouts += 1;
                return Ok(delivery);
            }
        }
    }

    /// Drains the controller's inbox, returning `(sender, message)` pairs
    /// in delivery order. Delayed messages appear only once their round
    /// has come (see [`Network::advance_round`]).
    pub fn drain_inbox(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.inbox)
    }

    /// Delivery statistics for camera `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn stats(&self, id: usize) -> Result<TransportStats> {
        self.nodes
            .get(id)
            .map(|n| n.stats)
            .ok_or(NetError::UnknownNode(id))
    }

    /// Aggregate statistics across all camera nodes (uplink only).
    pub fn total_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for n in &self.nodes {
            total.merge(&n.stats);
        }
        total
    }

    /// Controller-side downlink statistics.
    pub fn downlink_stats(&self) -> TransportStats {
        self.downlink_stats
    }

    /// Replaces camera `id`'s link (e.g. degraded signal).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn set_link(&mut self, id: usize, link: LinkModel) -> Result<()> {
        self.nodes
            .get_mut(id)
            .map(|n| n.link = link)
            .ok_or(NetError::UnknownNode(id))
    }

    /// One deterministic roll for `link`/`tag`, consuming the next event
    /// counter value.
    fn roll(&mut self, link: usize, tag: u64) -> f64 {
        let n = self.rolls;
        self.rolls += 1;
        self.plan.unit_roll(link, tag, n)
    }

    /// Rolls the corruption plan for one *delivered* data attempt and,
    /// when it fires, puts the message through a real
    /// encode → bit-flip → decode cycle. Returns `true` when the
    /// receiver's checksum rejected the mangled frame (the guaranteed
    /// outcome at ≤ 3 flips) — the caller then treats the attempt like
    /// a drop. Disabled plans consume no roll and always return
    /// `false`, so pre-corruption runs replay bit-identically.
    fn corrupt_attempt(
        &mut self,
        link: usize,
        target: Endpoint,
        message: &Message,
        attempt: u32,
    ) -> bool {
        let corruption = *self.plan.corruption();
        if !corruption.enabled() || self.roll(link, TAG_CORRUPT) >= corruption.rate() {
            return false;
        }
        let mut frame = encode_frame(message);
        let mask = corruption.flip_mask(
            self.plan.seed(),
            link,
            target,
            self.round,
            attempt,
            frame.len() * 8,
        );
        for bit in mask {
            frame[bit / 8] ^= 1 << (bit % 8);
        }
        // A frame that still decodes to the original survived intact —
        // unreachable while flips are distinct and nonzero, but checked
        // so the invariant "corrupt data is never consumed" rests on
        // the actual decode, not on our reasoning about CRC distances.
        !matches!(decode_frame(&frame), Ok(ref m) if m == message)
    }

    /// Accepts a delivered message: straight into the inbox, or into the
    /// pending queue when delayed.
    fn admit(&mut self, from: usize, message: Message, delay_rounds: usize) {
        if delay_rounds == 0 {
            self.push_inbox(from, message);
        } else {
            self.pending.push(PendingDelivery {
                due_round: self.round + delay_rounds,
                from,
                message,
            });
        }
    }

    /// Pushes into the inbox, letting the reorder fault swap the new
    /// arrival with its predecessor.
    fn push_inbox(&mut self, from: usize, message: Message) {
        self.inbox.push((from, message));
        let reorder = self.plan.faults(from).reorder;
        if reorder > 0.0 && self.inbox.len() >= 2 && self.roll(from, TAG_REORDER) < reorder {
            let n = self.inbox.len();
            self.inbox.swap(n - 1, n - 2);
        }
    }
}

/// Maps a battery-drain failure onto the structured transport error.
fn send_failed(e: EnergyError) -> NetError {
    match e {
        EnergyError::BatteryExhausted {
            requested,
            remaining,
        } => NetError::SendFailed {
            needed_j: requested,
            available_j: remaining,
        },
        // `BatteryState::drain` only rejects negative draws otherwise,
        // and transmit energies are non-negative by construction.
        _ => NetError::SendFailed {
            needed_j: f64::NAN,
            available_j: f64::NAN,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFaults;

    fn setup() -> (Network, BatteryState, PowerMeter) {
        (
            Network::new(4, LinkModel::default(), DeviceEnergyModel::default()),
            BatteryState::new(100.0).unwrap(),
            PowerMeter::new(),
        )
    }

    #[test]
    fn send_charges_battery_and_delivers() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(bat.used() > 0.0);
        assert!((meter.by_category(EnergyCategory::Communication) - bat.used()).abs() < 1e-12);
        let inbox = net.drain_inbox();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].0, 0);
        assert!(net.drain_inbox().is_empty());
    }

    #[test]
    fn stats_accumulate_per_node() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(
            1,
            Message::DetectionMetadata { objects: 2 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        net.send(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        let s = net.stats(1).unwrap();
        assert_eq!(s.messages, 2);
        assert!(s.bytes > 172);
        assert!(s.energy_j > 0.0);
        assert!(s.airtime_s > 0.0);
        assert_eq!(net.stats(0).unwrap().messages, 0);
    }

    #[test]
    fn total_stats_sum_nodes() {
        let (mut net, mut bat, mut meter) = setup();
        for cam in 0..4 {
            net.send(cam, Message::EnergyReport, &mut bat, &mut meter)
                .unwrap();
        }
        assert_eq!(net.total_stats().messages, 4);
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut net, mut bat, mut meter) = setup();
        assert!(matches!(
            net.send(9, Message::EnergyReport, &mut bat, &mut meter),
            Err(NetError::UnknownNode(9))
        ));
        assert!(net.stats(9).is_err());
        assert!(matches!(
            net.send_reliable(9, Message::EnergyReport, &mut bat, &mut meter),
            Err(NetError::UnknownNode(9))
        ));
        assert!(matches!(
            net.send_downlink(9, Message::ActivationCommand),
            Err(NetError::UnknownNode(9))
        ));
    }

    #[test]
    fn dead_battery_blocks_send_atomically() {
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default());
        let mut bat = BatteryState::new(1e-9).unwrap();
        let mut meter = PowerMeter::new();
        let big = Message::FeatureUpload {
            frames: 100,
            feature_dim: 4180,
        };
        assert!(matches!(
            net.send(0, big, &mut bat, &mut meter),
            Err(NetError::SendFailed { .. })
        ));
        assert!(net.drain_inbox().is_empty());
        assert_eq!(net.stats(0).unwrap().messages, 0);
        assert_eq!(meter.total(), 0.0);
    }

    #[test]
    fn degraded_link_costs_more() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(
            0,
            Message::DetectionMetadata { objects: 5 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        let good = net.stats(0).unwrap().energy_j;
        net.set_link(0, LinkModel::new(20e6, 0.4).unwrap()).unwrap();
        net.send(
            0,
            Message::DetectionMetadata { objects: 5 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        let total = net.stats(0).unwrap().energy_j;
        assert!(total - good > good, "retransmissions should dominate");
    }

    #[test]
    fn with_nodes_builds_heterogeneous_rig() {
        let mut net = Network::with_nodes(vec![
            (LinkModel::default(), DeviceEnergyModel::default()),
            (
                LinkModel::new(20e6, 0.4).unwrap(),
                DeviceEnergyModel::default(),
            ),
        ]);
        assert_eq!(net.cameras(), 2);
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let msg = Message::DetectionMetadata { objects: 5 };
        net.send(0, msg.clone(), &mut bat, &mut meter).unwrap();
        net.send(1, msg, &mut bat, &mut meter).unwrap();
        assert!(
            net.stats(1).unwrap().energy_j > 2.0 * net.stats(0).unwrap().energy_j,
            "the low-quality link must cost more"
        );
    }

    #[test]
    fn reliable_send_on_ideal_plan_matches_raw_send_energy() {
        let (mut net, mut bat, mut meter) = setup();
        let msg = Message::DetectionMetadata { objects: 3 };
        let d = net
            .send_reliable(0, msg.clone(), &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);
        assert_eq!(d.attempts, 1);
        assert_eq!(d.backoff_s, 0.0);
        let reliable_cost = bat.used();

        let mut bat2 = BatteryState::new(100.0).unwrap();
        let mut meter2 = PowerMeter::new();
        net.send(1, msg, &mut bat2, &mut meter2).unwrap();
        assert!(
            (reliable_cost - bat2.used()).abs() < 1e-15,
            "ideal reliable path must cost exactly one attempt"
        );
        assert_eq!(net.drain_inbox().len(), 2);
    }

    #[test]
    fn loss_forces_retries_and_burns_energy() {
        let plan = FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.6));
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let mut ideal = BatteryState::new(100.0).unwrap();
        let mut ideal_meter = PowerMeter::new();
        let mut ideal_net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default());

        let mut retried = false;
        for _ in 0..40 {
            let msg = Message::DetectionMetadata { objects: 2 };
            let d = net
                .send_reliable(0, msg.clone(), &mut bat, &mut meter)
                .unwrap();
            assert!(d.acked, "unlimited retries must end acked");
            retried |= d.attempts > 1;
            ideal_net
                .send(0, msg, &mut ideal, &mut ideal_meter)
                .unwrap();
        }
        assert!(
            retried,
            "60% loss must force at least one retry in 40 sends"
        );
        assert!(bat.used() > ideal.used(), "retries must cost extra energy");
        let s = net.stats(0).unwrap();
        assert_eq!(s.messages, 40);
        assert!(s.drops > 0 && s.retries > 0);
        assert!(s.attempts > 40);
        assert!(s.backoff_s > 0.0);
        assert_eq!(net.drain_inbox().len(), 40, "exactly one copy per message");
    }

    #[test]
    fn lost_ack_does_not_double_deliver() {
        // High loss + unlimited retries: some acks are bound to get lost,
        // producing retransmissions of already-delivered seqs.
        let plan = FaultPlan::seeded(3).with_default_faults(LinkFaults::lossy(0.7));
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(1000.0).unwrap();
        let mut meter = PowerMeter::new();
        for _ in 0..60 {
            net.send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
                .unwrap();
        }
        let s = net.stats(0).unwrap();
        assert!(s.duplicates > 0, "70% loss must lose some acks in 60 sends");
        assert_eq!(net.drain_inbox().len(), 60);
    }

    #[test]
    fn retry_cap_times_out() {
        let plan = FaultPlan::seeded(1).with_default_faults(LinkFaults::lossy(0.95));
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            });
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let mut timed_out = false;
        for _ in 0..20 {
            let d = net
                .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
                .unwrap();
            assert!(d.attempts <= 3);
            timed_out |= !d.acked;
        }
        assert!(timed_out, "95% loss with 2 retries must time out sometimes");
        assert!(net.stats(0).unwrap().timeouts > 0);
    }

    #[test]
    fn crash_window_blocks_send_without_energy() {
        let plan = FaultPlan::seeded(5).with_crash(0, 0, 2);
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan);
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 0);
        assert_eq!(bat.used(), 0.0, "a crashed radio draws nothing");
        assert!(net.is_camera_down(0));

        net.advance_round();
        net.advance_round();
        assert!(!net.is_camera_down(0), "crash window [0, 2) is over");
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.acked && bat.used() > 0.0);
    }

    #[test]
    fn outage_burns_one_probe_attempt() {
        let plan = FaultPlan::seeded(6).with_outage(0, 0, 1);
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 1, "outage: one probe, then give up");
        assert!(bat.used() > 0.0, "the probe attempt still costs energy");
        assert_eq!(net.stats(0).unwrap().timeouts, 1);
    }

    #[test]
    fn delay_holds_delivery_until_round_matures() {
        let plan = FaultPlan::seeded(8).with_default_faults(LinkFaults {
            delay_rounds: 2,
            ..LinkFaults::ideal()
        });
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan);
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);
        assert_eq!(d.delayed_rounds, 2);
        assert!(net.drain_inbox().is_empty(), "not due yet");
        net.advance_round();
        assert!(net.drain_inbox().is_empty(), "still one round early");
        net.advance_round();
        assert_eq!(net.drain_inbox().len(), 1);
    }

    #[test]
    fn reorder_swaps_adjacent_arrivals() {
        let plan = FaultPlan::seeded(11).with_default_faults(LinkFaults {
            reorder: 0.5,
            ..LinkFaults::ideal()
        });
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan);
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        for objects in 0..30 {
            net.send_reliable(
                0,
                Message::DetectionMetadata { objects },
                &mut bat,
                &mut meter,
            )
            .unwrap();
        }
        let order: Vec<usize> = net
            .drain_inbox()
            .into_iter()
            .map(|(_, m)| match m {
                Message::DetectionMetadata { objects } => objects,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order.len(), 30, "reorder must not lose or duplicate");
        assert!(
            (0..order.len()).any(|i| order[i] != i),
            "50% reorder over 30 sends must swap at least once"
        );
    }

    #[test]
    fn chaos_trace_is_reproducible() {
        let run = || {
            let plan = FaultPlan::seeded(99).with_default_faults(LinkFaults {
                loss: 0.4,
                delay_rounds: 1,
                jitter_rounds: 2,
                duplicate: 0.2,
                reorder: 0.3,
            });
            let mut net = Network::new(3, LinkModel::default(), DeviceEnergyModel::default())
                .with_fault_plan(plan)
                .with_retry_policy(RetryPolicy::unlimited());
            let mut bat = BatteryState::new(1000.0).unwrap();
            let mut meter = PowerMeter::new();
            let mut trace = Vec::new();
            for round in 0..5 {
                for cam in 0..3 {
                    let d = net
                        .send_reliable(
                            cam,
                            Message::DetectionMetadata { objects: round },
                            &mut bat,
                            &mut meter,
                        )
                        .unwrap();
                    trace.push((cam, d.attempts, d.delayed_rounds));
                }
                net.advance_round();
                trace.extend(
                    net.drain_inbox()
                        .into_iter()
                        .map(|(from, m)| (from, 0, m.wire_bytes() as usize)),
                );
            }
            (trace, bat.used(), net.total_stats())
        };
        let (t1, e1, s1) = run();
        let (t2, e2, s2) = run();
        assert_eq!(t1, t2, "same seed, same trace");
        assert_eq!(e1.to_bits(), e2.to_bits(), "bit-identical energy");
        assert_eq!(s1, s2);
    }

    #[test]
    fn dead_controller_turns_uplinks_into_probes_and_silences_downlink() {
        let (mut net, mut bat, mut meter) = setup();
        net.set_controller_down(true);
        assert!(net.controller_down());
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 1, "one probe discovers the dead hub");
        assert!(bat.used() > 0.0, "the probe still costs energy");
        let d = net.send_downlink(0, Message::AlgorithmAssignment).unwrap();
        assert!(!d.delivered && d.attempts == 0, "a dead hub sends nothing");
        assert_eq!(net.downlink_stats().timeouts, 1);

        net.set_controller_down(false);
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked, "hub recovery restores delivery");
    }

    #[test]
    fn peer_send_charges_sender_and_skips_the_inbox() {
        let (mut net, mut bat, mut meter) = setup();
        let d = net
            .send_peer(
                1,
                2,
                Message::ControllerHandover {
                    controller: 1,
                    epoch: 1,
                },
                &mut bat,
                &mut meter,
            )
            .unwrap();
        assert!(d.delivered && d.acked);
        assert_eq!(d.attempts, 1);
        assert!(bat.used() > 0.0, "the announcer pays for the broadcast");
        assert!(
            net.drain_inbox().is_empty(),
            "peer traffic never reaches the controller inbox"
        );
        assert_eq!(net.stats(1).unwrap().messages, 1);
        assert!(matches!(
            net.send_peer(0, 9, Message::DegradedFrame, &mut bat, &mut meter),
            Err(NetError::UnknownNode(9))
        ));
    }

    #[test]
    fn peer_send_to_a_crashed_camera_burns_one_probe() {
        let plan = FaultPlan::seeded(4).with_crash(2, 0, 5);
        let mut net = Network::new(3, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan);
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let d = net
            .send_peer(
                0,
                2,
                Message::ControllerHandover {
                    controller: 0,
                    epoch: 1,
                },
                &mut bat,
                &mut meter,
            )
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 1);
        assert!(bat.used() > 0.0);

        // A crashed *sender* makes no attempt at all.
        let mut bat2 = BatteryState::new(100.0).unwrap();
        let d = net
            .send_peer(
                2,
                0,
                Message::ControllerHandover {
                    controller: 2,
                    epoch: 2,
                },
                &mut bat2,
                &mut meter,
            )
            .unwrap();
        assert_eq!(d.attempts, 0);
        assert_eq!(bat2.used(), 0.0);
    }

    #[test]
    fn partition_blocks_uplink_like_an_outage() {
        use crate::fault::PartitionPlan;
        let split = PartitionPlan::none().with_split(
            vec![
                vec![Endpoint::Hub, Endpoint::Camera(0)],
                vec![Endpoint::Camera(1)],
            ],
            0,
            2,
        );
        let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(FaultPlan::seeded(3).with_partition(split));
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();

        // Same island as the hub: delivery works.
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);

        // Cut off from the hub: one probe, energy charged, no delivery.
        let before = bat.used();
        let d = net
            .send_reliable(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 1, "one probe discovers the dead channel");
        assert!(bat.used() > before, "the probe still costs energy");

        // But the same camera can still reach a seat inside its island.
        let d = net
            .send_reliable_to(
                1,
                Endpoint::Camera(1),
                Message::EnergyReport,
                &mut bat,
                &mut meter,
            )
            .unwrap();
        assert!(d.delivered && d.acked, "island-local seat stays reachable");

        // After the window everything heals.
        net.advance_round();
        net.advance_round();
        let d = net
            .send_reliable(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);
    }

    #[test]
    fn partition_silences_downlink_and_darkens_peers() {
        use crate::fault::PartitionPlan;
        let split = PartitionPlan::none().with_split(
            vec![
                vec![Endpoint::Hub, Endpoint::Camera(0)],
                vec![Endpoint::Camera(1), Endpoint::Camera(2)],
            ],
            0,
            1,
        );
        let mut net = Network::new(3, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(FaultPlan::seeded(5).with_partition(split));
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();

        // Downlink into the far island: drops, no delivery.
        let d = net.send_downlink(1, Message::AlgorithmAssignment).unwrap();
        assert!(!d.delivered);
        assert_eq!(net.downlink_stats().timeouts, 1);
        let d = net.send_downlink(0, Message::AlgorithmAssignment).unwrap();
        assert!(d.delivered && d.acked, "own island still served");

        // Peer traffic: dead across the cut, alive inside an island.
        let d = net
            .send_peer(0, 1, Message::DegradedFrame, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered);
        assert_eq!(d.attempts, 1);
        let d = net
            .send_peer(1, 2, Message::DegradedFrame, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);
    }

    #[test]
    fn one_way_partition_is_asymmetric_on_the_wire() {
        use crate::fault::PartitionPlan;
        let plan = PartitionPlan::none().with_one_way(Endpoint::Camera(0), Endpoint::Hub, 0, 1);
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(FaultPlan::seeded(6).with_partition(plan));
        let mut bat = BatteryState::new(100.0).unwrap();
        let mut meter = PowerMeter::new();
        let d = net
            .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered, "uplink direction is cut");
        let d = net.send_downlink(0, Message::AlgorithmAssignment).unwrap();
        assert!(d.delivered && d.acked, "downlink direction still works");
    }

    #[test]
    fn corruption_is_detected_retried_and_charged() {
        use crate::fault::CorruptionPlan;
        let plan =
            FaultPlan::seeded(21).with_corruption(CorruptionPlan::with_rate(0.6).with_flips(3));
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(1000.0).unwrap();
        let mut meter = PowerMeter::new();
        let mut ideal_bat = BatteryState::new(1000.0).unwrap();
        let mut ideal_meter = PowerMeter::new();
        let mut ideal_net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default());

        for _ in 0..40 {
            let msg = Message::DetectionMetadata { objects: 2 };
            let d = net
                .send_reliable(0, msg.clone(), &mut bat, &mut meter)
                .unwrap();
            assert!(d.acked, "unlimited retries must end acked");
            ideal_net
                .send(0, msg, &mut ideal_bat, &mut ideal_meter)
                .unwrap();
        }
        let s = net.stats(0).unwrap();
        assert!(s.corrupted > 0, "60% corruption must fire in 40 sends");
        assert_eq!(
            s.corrupted, s.rejected,
            "every corrupt frame must be rejected, never consumed"
        );
        assert_eq!(s.drops, 0, "no loss configured: corruption is separate");
        assert!(s.retries >= s.corrupted, "each rejection forces a retry");
        assert!(
            bat.used() > ideal_bat.used(),
            "rejected attempts must still cost energy"
        );
        assert_eq!(
            net.drain_inbox().len(),
            40,
            "exactly one clean copy per message"
        );
    }

    #[test]
    fn corruption_trace_is_reproducible() {
        use crate::fault::CorruptionPlan;
        let run = || {
            let plan = FaultPlan::seeded(77)
                .with_default_faults(LinkFaults::lossy(0.2))
                .with_corruption(CorruptionPlan::with_rate(0.3).with_flips(2));
            let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
                .with_fault_plan(plan)
                .with_retry_policy(RetryPolicy::unlimited());
            let mut bat = BatteryState::new(1000.0).unwrap();
            let mut meter = PowerMeter::new();
            let mut trace = Vec::new();
            for round in 0..6 {
                for cam in 0..2 {
                    let d = net
                        .send_reliable(
                            cam,
                            Message::DetectionMetadata { objects: round },
                            &mut bat,
                            &mut meter,
                        )
                        .unwrap();
                    trace.push((cam, d.attempts, d.corrupted));
                }
                net.advance_round();
            }
            (trace, bat.used(), net.total_stats())
        };
        let (t1, e1, s1) = run();
        let (t2, e2, s2) = run();
        assert!(t1.iter().any(|&(_, _, c)| c > 0), "corruption must fire");
        assert_eq!(t1, t2, "same seed, same corruption trace");
        assert_eq!(e1.to_bits(), e2.to_bits());
        assert_eq!(s1, s2);
    }

    #[test]
    fn corruption_hits_downlink_and_peer_paths() {
        use crate::fault::CorruptionPlan;
        let plan =
            FaultPlan::seeded(13).with_corruption(CorruptionPlan::with_rate(0.7).with_flips(1));
        let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(1000.0).unwrap();
        let mut meter = PowerMeter::new();
        for _ in 0..20 {
            let d = net.send_downlink(0, Message::AlgorithmAssignment).unwrap();
            assert!(d.acked);
            let d = net
                .send_peer(0, 1, Message::DegradedFrame, &mut bat, &mut meter)
                .unwrap();
            assert!(d.acked);
        }
        assert!(net.downlink_stats().corrupted > 0, "downlink corruption");
        assert_eq!(
            net.downlink_stats().corrupted,
            net.downlink_stats().rejected
        );
        let s = net.stats(0).unwrap();
        assert!(s.corrupted > 0, "peer corruption");
        assert_eq!(s.corrupted, s.rejected);
    }

    #[test]
    fn disabled_corruption_changes_no_rolls() {
        // A plan with loss but no corruption must produce the same roll
        // stream (hence identical outcomes) as the pre-corruption code:
        // the corruption check is zero-roll when disabled.
        let run = |with_noop_corruption: bool| {
            let mut plan = FaultPlan::seeded(5).with_default_faults(LinkFaults::lossy(0.4));
            if with_noop_corruption {
                plan = plan.with_corruption(crate::fault::CorruptionPlan::none());
            }
            let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default())
                .with_fault_plan(plan)
                .with_retry_policy(RetryPolicy::unlimited());
            let mut bat = BatteryState::new(1000.0).unwrap();
            let mut meter = PowerMeter::new();
            let mut trace = Vec::new();
            for _ in 0..25 {
                let d = net
                    .send_reliable(0, Message::EnergyReport, &mut bat, &mut meter)
                    .unwrap();
                trace.push((d.attempts, d.corrupted));
            }
            (trace, bat.used().to_bits())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn loopback_delivery_is_free_and_acked() {
        let d = Delivery::loopback();
        assert!(d.delivered && d.acked);
        assert_eq!(d.attempts, 0);
        assert_eq!(d.backoff_s, 0.0);
    }

    #[test]
    fn detached_camera_is_dark_on_every_path() {
        let (mut net, mut bat, mut meter) = setup();
        assert!(net.is_attached(1));
        net.set_attached(1, false).unwrap();
        assert!(!net.is_attached(1));
        assert!(net.is_camera_down(1), "detached reads as down");

        // Uplink: no attempt, no energy, a timeout on the books.
        let d = net
            .send_reliable(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(!d.delivered && !d.acked);
        assert_eq!(d.attempts, 0);
        assert_eq!(bat.used(), 0.0, "a detached radio draws nothing");

        // Downlink: a departed camera hears nothing.
        let d = net.send_downlink(1, Message::AlgorithmAssignment).unwrap();
        assert!(!d.delivered);

        // Peer path: one probe discovers the hole in the fleet.
        let d = net
            .send_peer(
                0,
                1,
                Message::ControllerHandover {
                    controller: 0,
                    epoch: 1,
                },
                &mut bat,
                &mut meter,
            )
            .unwrap();
        assert!(!d.delivered);
        assert_eq!(d.attempts, 1);

        // Re-attach restores service with the same identity.
        net.set_attached(1, true).unwrap();
        let seq_before = net.stats(1).unwrap().timeouts;
        let d = net
            .send_reliable(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked, "rejoin restores delivery");
        assert_eq!(
            net.stats(1).unwrap().timeouts,
            seq_before,
            "the rejoin send must not time out"
        );
        assert!(matches!(
            net.set_attached(9, false),
            Err(NetError::UnknownNode(9))
        ));
        assert!(!net.is_attached(9));
    }

    #[test]
    fn add_endpoint_grows_a_live_network() {
        let (mut net, mut bat, mut meter) = setup();
        assert_eq!(net.cameras(), 4);
        let id = net.add_endpoint(LinkModel::default(), DeviceEnergyModel::default());
        assert_eq!(id, 4);
        assert_eq!(net.cameras(), 5);
        assert!(net.is_attached(id));
        let d = net
            .send_reliable(id, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(d.delivered && d.acked);
        assert_eq!(net.stats(id).unwrap().messages, 1);
    }

    #[test]
    fn downlink_costs_no_camera_energy_and_respects_crash() {
        let plan = FaultPlan::seeded(2).with_crash(1, 0, 3);
        let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan);
        let d = net.send_downlink(0, Message::AlgorithmAssignment).unwrap();
        assert!(d.delivered && d.acked);
        let d = net.send_downlink(1, Message::AlgorithmAssignment).unwrap();
        assert!(!d.delivered, "a crashed camera hears nothing");
        let stats = net.downlink_stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.energy_j, 0.0, "controller power is not metered");
        assert_eq!(net.total_stats().attempts, 0, "no uplink involved");
    }
}
