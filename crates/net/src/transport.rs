//! The in-memory star network.
//!
//! Cameras are leaves, the controller is the hub. Sending charges the
//! sender's battery through its link and device models and records
//! delivery statistics; delivered messages land in the controller's inbox
//! in send order.

use crate::message::{Message, WireSize};
use crate::{NetError, Result};
use eecs_energy::budget::BatteryState;
use eecs_energy::comm::LinkModel;
use eecs_energy::meter::{EnergyCategory, PowerMeter};
use eecs_energy::model::DeviceEnergyModel;

/// Per-node delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportStats {
    /// Messages sent.
    pub messages: u64,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Radio energy spent (J).
    pub energy_j: f64,
    /// Cumulative air time (s).
    pub airtime_s: f64,
}

/// One camera's attachment point.
#[derive(Debug, Clone)]
struct Node {
    link: LinkModel,
    device: DeviceEnergyModel,
    stats: TransportStats,
}

/// The star network: `n` camera nodes and a controller inbox.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    inbox: Vec<(usize, Message)>,
}

impl Network {
    /// Creates a network of `cameras` identical nodes.
    pub fn new(cameras: usize, link: LinkModel, device: DeviceEnergyModel) -> Network {
        Network {
            nodes: vec![
                Node {
                    link,
                    device,
                    stats: TransportStats::default(),
                };
                cameras
            ],
            inbox: Vec::new(),
        }
    }

    /// Number of camera nodes.
    pub fn cameras(&self) -> usize {
        self.nodes.len()
    }

    /// Sends `message` from camera `from`, draining `battery` for the radio
    /// energy.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] for a bad index,
    /// * [`NetError::SendFailed`] when the battery cannot cover the
    ///   transmission (nothing is sent or charged).
    pub fn send(
        &mut self,
        from: usize,
        message: Message,
        battery: &mut BatteryState,
        meter: &mut PowerMeter,
    ) -> Result<()> {
        let node = self
            .nodes
            .get_mut(from)
            .ok_or(NetError::UnknownNode(from))?;
        let bytes = message.wire_bytes();
        let energy = node.link.transmit_energy(bytes, &node.device);
        battery
            .drain(energy)
            .map_err(|e| NetError::SendFailed(e.to_string()))?;
        meter.record(EnergyCategory::Communication, energy);
        node.stats.messages += 1;
        node.stats.bytes += bytes;
        node.stats.energy_j += energy;
        node.stats.airtime_s += node.link.transfer_time(bytes);
        self.inbox.push((from, message));
        Ok(())
    }

    /// Drains the controller's inbox, returning `(sender, message)` pairs
    /// in delivery order.
    pub fn drain_inbox(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.inbox)
    }

    /// Delivery statistics for camera `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn stats(&self, id: usize) -> Result<TransportStats> {
        self.nodes
            .get(id)
            .map(|n| n.stats)
            .ok_or(NetError::UnknownNode(id))
    }

    /// Aggregate statistics across all nodes.
    pub fn total_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for n in &self.nodes {
            total.messages += n.stats.messages;
            total.bytes += n.stats.bytes;
            total.energy_j += n.stats.energy_j;
            total.airtime_s += n.stats.airtime_s;
        }
        total
    }

    /// Replaces camera `id`'s link (e.g. degraded signal).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a bad index.
    pub fn set_link(&mut self, id: usize, link: LinkModel) -> Result<()> {
        self.nodes
            .get_mut(id)
            .map(|n| n.link = link)
            .ok_or(NetError::UnknownNode(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Network, BatteryState, PowerMeter) {
        (
            Network::new(4, LinkModel::default(), DeviceEnergyModel::default()),
            BatteryState::new(100.0).unwrap(),
            PowerMeter::new(),
        )
    }

    #[test]
    fn send_charges_battery_and_delivers() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(0, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        assert!(bat.used() > 0.0);
        assert!((meter.by_category(EnergyCategory::Communication) - bat.used()).abs() < 1e-12);
        let inbox = net.drain_inbox();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].0, 0);
        assert!(net.drain_inbox().is_empty());
    }

    #[test]
    fn stats_accumulate_per_node() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(
            1,
            Message::DetectionMetadata { objects: 2 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        net.send(1, Message::EnergyReport, &mut bat, &mut meter)
            .unwrap();
        let s = net.stats(1).unwrap();
        assert_eq!(s.messages, 2);
        assert!(s.bytes > 172);
        assert!(s.energy_j > 0.0);
        assert!(s.airtime_s > 0.0);
        assert_eq!(net.stats(0).unwrap().messages, 0);
    }

    #[test]
    fn total_stats_sum_nodes() {
        let (mut net, mut bat, mut meter) = setup();
        for cam in 0..4 {
            net.send(cam, Message::EnergyReport, &mut bat, &mut meter)
                .unwrap();
        }
        assert_eq!(net.total_stats().messages, 4);
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut net, mut bat, mut meter) = setup();
        assert!(matches!(
            net.send(9, Message::EnergyReport, &mut bat, &mut meter),
            Err(NetError::UnknownNode(9))
        ));
        assert!(net.stats(9).is_err());
    }

    #[test]
    fn dead_battery_blocks_send_atomically() {
        let mut net = Network::new(1, LinkModel::default(), DeviceEnergyModel::default());
        let mut bat = BatteryState::new(1e-9).unwrap();
        let mut meter = PowerMeter::new();
        let big = Message::FeatureUpload {
            frames: 100,
            feature_dim: 4180,
        };
        assert!(matches!(
            net.send(0, big, &mut bat, &mut meter),
            Err(NetError::SendFailed(_))
        ));
        assert!(net.drain_inbox().is_empty());
        assert_eq!(net.stats(0).unwrap().messages, 0);
        assert_eq!(meter.total(), 0.0);
    }

    #[test]
    fn degraded_link_costs_more() {
        let (mut net, mut bat, mut meter) = setup();
        net.send(
            0,
            Message::DetectionMetadata { objects: 5 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        let good = net.stats(0).unwrap().energy_j;
        net.set_link(0, LinkModel::new(20e6, 0.4).unwrap()).unwrap();
        net.send(
            0,
            Message::DetectionMetadata { objects: 5 },
            &mut bat,
            &mut meter,
        )
        .unwrap();
        let total = net.stats(0).unwrap().energy_j;
        assert!(total - good > good, "retransmissions should dominate");
    }
}
