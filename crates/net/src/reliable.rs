//! Reliable-delivery policy and per-send outcome.
//!
//! The transport's reliable path ([`crate::Network::send_reliable`])
//! implements a stop-and-wait ARQ: every message carries a per-sender
//! sequence number, the controller acknowledges each copy it hears, and
//! the sender retries unacknowledged messages with exponential backoff up
//! to a retry cap. The controller inbox suppresses duplicate sequence
//! numbers, so loss of an *ack* (message delivered, sender unaware) never
//! double-delivers.
//!
//! Every attempt — including ones whose data or ack is lost — drains the
//! sender's battery through the usual link/device energy models; that is
//! the whole point of modeling retries in an energy paper.

/// Retry/backoff parameters of the reliable send path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts after the first; [`u32::MAX`] means retry
    /// until acknowledged (termination then relies on loss `< 1`).
    pub max_retries: u32,
    /// Backoff before the first retry (s).
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff interval (s).
    pub max_backoff_s: f64,
}

impl RetryPolicy {
    /// Retry forever (until acknowledged or the battery dies).
    pub fn unlimited() -> RetryPolicy {
        RetryPolicy {
            max_retries: u32::MAX,
            ..RetryPolicy::default()
        }
    }

    /// Give up after the first attempt — no retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff interval waited before attempt number `attempt`
    /// (1-based): zero for the first attempt, then
    /// `base · factor^(attempt - 2)` capped at `max_backoff_s`.
    pub fn backoff_before_attempt(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        let scaled = self.base_backoff_s * self.backoff_factor.powi(attempt as i32 - 2);
        scaled.min(self.max_backoff_s)
    }
}

impl Default for RetryPolicy {
    /// Five retries, 50 ms initial backoff doubling up to 2 s — the
    /// usual WiFi-association-scale numbers.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_backoff_s: 0.05,
            backoff_factor: 2.0,
            max_backoff_s: 2.0,
        }
    }
}

/// Outcome of one reliable send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Whether any copy of the message reached the controller inbox
    /// (possibly still pending a delivery delay).
    pub delivered: bool,
    /// Whether the sender heard an acknowledgement. `delivered` without
    /// `acked` means the ack was lost and the retry cap ran out.
    pub acked: bool,
    /// Transmission attempts made (0 for a crashed sender).
    pub attempts: u32,
    /// The per-sender sequence number this send consumed.
    pub seq: u64,
    /// Rounds of delivery delay (fixed delay + jitter) the accepted copy
    /// incurred; 0 when delivered immediately or not delivered.
    pub delayed_rounds: usize,
    /// Attempts whose frame arrived bit-corrupted and was rejected by
    /// the receiver's checksum (each one behaves like a drop: no ack,
    /// the ARQ retries, the energy stays spent).
    pub corrupted: u32,
    /// Total backoff time spent between attempts (s).
    pub backoff_s: f64,
}

impl Delivery {
    pub(crate) fn pending(seq: u64) -> Delivery {
        Delivery {
            delivered: false,
            acked: false,
            attempts: 0,
            seq,
            delayed_rounds: 0,
            corrupted: 0,
            backoff_s: 0.0,
        }
    }

    /// A delivery that never touched the radio: the sender and receiver
    /// are the same host (a camera acting as its own controller after a
    /// failover). Delivered and acknowledged, zero attempts, zero cost.
    pub fn loopback() -> Delivery {
        Delivery {
            delivered: true,
            acked: true,
            attempts: 0,
            seq: 0,
            delayed_rounds: 0,
            corrupted: 0,
            backoff_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before_attempt(1), 0.0);
        assert!((p.backoff_before_attempt(2) - 0.05).abs() < 1e-12);
        assert!((p.backoff_before_attempt(3) - 0.10).abs() < 1e-12);
        assert!((p.backoff_before_attempt(4) - 0.20).abs() < 1e-12);
        assert_eq!(p.backoff_before_attempt(30), p.max_backoff_s);
    }

    #[test]
    fn unlimited_and_none_policies() {
        assert_eq!(RetryPolicy::unlimited().max_retries, u32::MAX);
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
