//! Property-based tests of the wire format and the reliability layer.

use eecs_energy::budget::BatteryState;
use eecs_energy::comm::LinkModel;
use eecs_energy::meter::PowerMeter;
use eecs_energy::model::DeviceEnergyModel;
use eecs_net::checksum::{crc32, Crc32};
use eecs_net::fault::{CorruptionPlan, FaultPlan, LinkFaults};
use eecs_net::message::{decode_frame, encode_frame, Message, WireSize};
use eecs_net::reliable::RetryPolicy;
use eecs_net::transport::Network;
use eecs_net::NetError;
use proptest::prelude::*;

/// Strategy covering every [`Message`] variant with arbitrary field
/// values: a variant selector plus two raw 64-bit words, mapped onto
/// whichever fields the selected variant carries.
fn any_message() -> impl Strategy<Value = Message> {
    (0..12u32, 0..u64::MAX, 0..u64::MAX).prop_map(|(variant, a, b)| match variant {
        0 => Message::FeatureUpload {
            frames: a as u16 as usize,
            feature_dim: b as u16 as usize,
        },
        1 => Message::EnergyReport,
        2 => Message::DetectionMetadata {
            objects: a as u32 as usize,
        },
        3 => Message::CroppedImage { bytes: a },
        4 => Message::ObjectDelivery {
            objects: a as u32 as usize,
            crop_bytes: b,
        },
        5 => Message::DegradedFrame,
        6 => Message::ControllerHandover {
            controller: a as u8 as usize,
            epoch: b,
        },
        7 => Message::AlgorithmAssignment,
        8 => Message::ActivationCommand,
        9 => Message::MissionSubmit {
            mission: a as u16 as usize,
            payload_crc: b,
        },
        10 => Message::MissionVerdict {
            mission: a as u16 as usize,
            verdict: b,
        },
        _ => Message::MissionReport {
            mission: a as u16 as usize,
            report_crc: b,
        },
    })
}

/// Strategy for one arbitrary byte (the shim has ranges, not `any`).
fn any_byte() -> impl Strategy<Value = u8> {
    (0..256u32).prop_map(|b| b as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metadata_wire_size_monotone_in_objects(a in 0..500usize, b in 0..500usize) {
        let (lo, hi) = (a.min(b), a.max(b));
        let small = Message::DetectionMetadata { objects: lo }.wire_bytes();
        let large = Message::DetectionMetadata { objects: hi }.wire_bytes();
        prop_assert!(small <= large);
        // Strictly monotone: every extra object costs wire bytes.
        if lo < hi {
            prop_assert!(small < large);
        }
    }

    #[test]
    fn feature_upload_wire_size_monotone_in_payload(
        frames in 1..200usize,
        dim in 1..5000usize,
        extra_frames in 0..50usize,
        extra_dim in 0..500usize,
    ) {
        let base = Message::FeatureUpload { frames, feature_dim: dim }.wire_bytes();
        let more_frames = Message::FeatureUpload {
            frames: frames + extra_frames,
            feature_dim: dim,
        }
        .wire_bytes();
        let more_dim = Message::FeatureUpload {
            frames,
            feature_dim: dim + extra_dim,
        }
        .wire_bytes();
        prop_assert!(more_frames >= base);
        prop_assert!(more_dim >= base);
        if extra_frames > 0 {
            prop_assert!(more_frames > base);
        }
        if extra_dim > 0 {
            prop_assert!(more_dim > base);
        }
    }

    #[test]
    fn object_delivery_wire_size_monotone(
        objects in 0..100usize,
        crop in 0..100_000u64,
        extra_objects in 0..20usize,
        extra_crop in 0..10_000u64,
    ) {
        let base = Message::ObjectDelivery { objects, crop_bytes: crop }.wire_bytes();
        let more = Message::ObjectDelivery {
            objects: objects + extra_objects,
            crop_bytes: crop + extra_crop,
        }
        .wire_bytes();
        prop_assert!(more >= base);
        // And the bundle always equals metadata + crops, so it never
        // undercounts either part.
        prop_assert!(base >= Message::DetectionMetadata { objects }.wire_bytes());
        prop_assert!(base >= crop);
    }

    /// With unlimited retries, any seeded loss/delay/jitter/duplication/
    /// reorder plan yields exactly-once inbox content: every send appears
    /// exactly once, no matter how many attempts, lost acks, duplicate
    /// copies or reshuffles the plan inflicts. (Crash/outage windows are
    /// out of scope here: a dead radio delivers zero times by design.)
    #[test]
    fn reliable_delivery_is_exactly_once_under_any_fault_plan(
        seed in 0..10_000u64,
        loss in 0.0..0.9f64,
        duplicate in 0.0..0.9f64,
        reorder in 0.0..0.9f64,
        delay in 0..3usize,
        jitter in 0..3usize,
        sends in 1..30usize,
    ) {
        let plan = FaultPlan::seeded(seed).with_default_faults(LinkFaults {
            loss,
            delay_rounds: delay,
            jitter_rounds: jitter,
            duplicate,
            reorder,
        });
        let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(1e9).unwrap();
        let mut meter = PowerMeter::new();

        for i in 0..sends {
            let d = net
                .send_reliable(
                    i % 2,
                    Message::DetectionMetadata { objects: i },
                    &mut bat,
                    &mut meter,
                )
                .unwrap();
            prop_assert!(d.acked, "unlimited retries must end acked");
            prop_assert!(d.delivered);
        }

        // Mature every possible delayed delivery.
        let mut received = Vec::new();
        for _ in 0..(delay + jitter + 1) {
            received.extend(net.drain_inbox());
            net.advance_round();
        }
        received.extend(net.drain_inbox());

        let mut payloads: Vec<usize> = received
            .iter()
            .map(|(_, m)| match m {
                Message::DetectionMetadata { objects } => *objects,
                other => panic!("unexpected message {other:?}"),
            })
            .collect();
        payloads.sort_unstable();
        let expected: Vec<usize> = (0..sends).collect();
        prop_assert_eq!(payloads, expected);
    }

    /// Fuzz hardening: `decode_frame` is total over arbitrary bytes —
    /// no panic, no unbounded allocation, and every failure is a typed
    /// [`NetError`], never a success on garbage.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any_byte(), 0..64)) {
        match decode_frame(&bytes) {
            // Random bytes that happen to form a valid frame must
            // re-encode to exactly those bytes (the format is canonical).
            Ok(msg) => prop_assert_eq!(encode_frame(&msg), bytes),
            Err(
                NetError::FrameTooShort { .. }
                | NetError::FrameChecksumMismatch { .. }
                | NetError::BadFrameHeader { .. }
                | NetError::UnknownFrameTag(_)
                | NetError::FrameLengthMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "non-frame error from decode: {other:?}"),
        }
    }

    /// Every message round-trips through the checksummed frame.
    #[test]
    fn frames_round_trip(msg in any_message()) {
        prop_assert_eq!(decode_frame(&encode_frame(&msg)).unwrap(), msg);
    }

    /// Any 1-bit flip anywhere in any frame is rejected — corruption is
    /// detected deterministically, not probabilistically.
    #[test]
    fn any_single_bit_flip_is_rejected(msg in any_message(), raw_bit in 0..1_000_000usize) {
        let mut frame = encode_frame(&msg);
        let bit = raw_bit % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_frame(&frame).is_err(), "bit {bit} consumed");
    }

    /// The corruption plan's full flip-mask (≤ 3 distinct bits) is also
    /// always rejected, for any keying of the pure mask function.
    #[test]
    fn corruption_masks_are_always_rejected(
        msg in any_message(),
        seed in 0..u64::MAX,
        from in 0..8usize,
        round in 0..1000usize,
        attempt in 0..16u32,
        flips in 1..4u32,
    ) {
        let plan = CorruptionPlan::with_rate(0.5).with_flips(flips);
        let mut frame = encode_frame(&msg);
        let mask = plan.flip_mask(
            seed,
            from,
            eecs_net::Endpoint::Hub,
            round,
            attempt,
            frame.len() * 8,
        );
        prop_assert!(!mask.is_empty());
        for bit in mask {
            frame[bit / 8] ^= 1 << (bit % 8);
        }
        prop_assert!(decode_frame(&frame).is_err());
    }

    /// Incremental CRC updates agree with the one-shot function over any
    /// chunking of any payload.
    #[test]
    fn incremental_crc_matches_one_shot(
        data in prop::collection::vec(any_byte(), 0..200),
        raw_split in 0..1000usize,
    ) {
        let split = raw_split % (data.len() + 1);
        let mut h = Crc32::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), crc32(&data));
    }

    /// Deterministic replay: the same plan over the same event sequence
    /// produces identical delivery records and bit-identical energy.
    #[test]
    fn seeded_chaos_replays_identically(seed in 0..10_000u64, loss in 0.0..0.8f64) {
        let run = || {
            let plan = FaultPlan::seeded(seed)
                .with_default_faults(LinkFaults::lossy(loss));
            let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
                .with_fault_plan(plan)
                .with_retry_policy(RetryPolicy::unlimited());
            let mut bat = BatteryState::new(1e9).unwrap();
            let mut meter = PowerMeter::new();
            let mut trace = Vec::new();
            for i in 0..10 {
                let d = net
                    .send_reliable(i % 2, Message::EnergyReport, &mut bat, &mut meter)
                    .unwrap();
                trace.push((d.attempts, d.delivered, d.acked));
            }
            (trace, bat.used().to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}
