//! Property-based tests of the wire format and the reliability layer.

use eecs_energy::budget::BatteryState;
use eecs_energy::comm::LinkModel;
use eecs_energy::meter::PowerMeter;
use eecs_energy::model::DeviceEnergyModel;
use eecs_net::fault::{FaultPlan, LinkFaults};
use eecs_net::message::{Message, WireSize};
use eecs_net::reliable::RetryPolicy;
use eecs_net::transport::Network;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metadata_wire_size_monotone_in_objects(a in 0..500usize, b in 0..500usize) {
        let (lo, hi) = (a.min(b), a.max(b));
        let small = Message::DetectionMetadata { objects: lo }.wire_bytes();
        let large = Message::DetectionMetadata { objects: hi }.wire_bytes();
        prop_assert!(small <= large);
        // Strictly monotone: every extra object costs wire bytes.
        if lo < hi {
            prop_assert!(small < large);
        }
    }

    #[test]
    fn feature_upload_wire_size_monotone_in_payload(
        frames in 1..200usize,
        dim in 1..5000usize,
        extra_frames in 0..50usize,
        extra_dim in 0..500usize,
    ) {
        let base = Message::FeatureUpload { frames, feature_dim: dim }.wire_bytes();
        let more_frames = Message::FeatureUpload {
            frames: frames + extra_frames,
            feature_dim: dim,
        }
        .wire_bytes();
        let more_dim = Message::FeatureUpload {
            frames,
            feature_dim: dim + extra_dim,
        }
        .wire_bytes();
        prop_assert!(more_frames >= base);
        prop_assert!(more_dim >= base);
        if extra_frames > 0 {
            prop_assert!(more_frames > base);
        }
        if extra_dim > 0 {
            prop_assert!(more_dim > base);
        }
    }

    #[test]
    fn object_delivery_wire_size_monotone(
        objects in 0..100usize,
        crop in 0..100_000u64,
        extra_objects in 0..20usize,
        extra_crop in 0..10_000u64,
    ) {
        let base = Message::ObjectDelivery { objects, crop_bytes: crop }.wire_bytes();
        let more = Message::ObjectDelivery {
            objects: objects + extra_objects,
            crop_bytes: crop + extra_crop,
        }
        .wire_bytes();
        prop_assert!(more >= base);
        // And the bundle always equals metadata + crops, so it never
        // undercounts either part.
        prop_assert!(base >= Message::DetectionMetadata { objects }.wire_bytes());
        prop_assert!(base >= crop);
    }

    /// With unlimited retries, any seeded loss/delay/jitter/duplication/
    /// reorder plan yields exactly-once inbox content: every send appears
    /// exactly once, no matter how many attempts, lost acks, duplicate
    /// copies or reshuffles the plan inflicts. (Crash/outage windows are
    /// out of scope here: a dead radio delivers zero times by design.)
    #[test]
    fn reliable_delivery_is_exactly_once_under_any_fault_plan(
        seed in 0..10_000u64,
        loss in 0.0..0.9f64,
        duplicate in 0.0..0.9f64,
        reorder in 0.0..0.9f64,
        delay in 0..3usize,
        jitter in 0..3usize,
        sends in 1..30usize,
    ) {
        let plan = FaultPlan::seeded(seed).with_default_faults(LinkFaults {
            loss,
            delay_rounds: delay,
            jitter_rounds: jitter,
            duplicate,
            reorder,
        });
        let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::unlimited());
        let mut bat = BatteryState::new(1e9).unwrap();
        let mut meter = PowerMeter::new();

        for i in 0..sends {
            let d = net
                .send_reliable(
                    i % 2,
                    Message::DetectionMetadata { objects: i },
                    &mut bat,
                    &mut meter,
                )
                .unwrap();
            prop_assert!(d.acked, "unlimited retries must end acked");
            prop_assert!(d.delivered);
        }

        // Mature every possible delayed delivery.
        let mut received = Vec::new();
        for _ in 0..(delay + jitter + 1) {
            received.extend(net.drain_inbox());
            net.advance_round();
        }
        received.extend(net.drain_inbox());

        let mut payloads: Vec<usize> = received
            .iter()
            .map(|(_, m)| match m {
                Message::DetectionMetadata { objects } => *objects,
                other => panic!("unexpected message {other:?}"),
            })
            .collect();
        payloads.sort_unstable();
        let expected: Vec<usize> = (0..sends).collect();
        prop_assert_eq!(payloads, expected);
    }

    /// Deterministic replay: the same plan over the same event sequence
    /// produces identical delivery records and bit-identical energy.
    #[test]
    fn seeded_chaos_replays_identically(seed in 0..10_000u64, loss in 0.0..0.8f64) {
        let run = || {
            let plan = FaultPlan::seeded(seed)
                .with_default_faults(LinkFaults::lossy(loss));
            let mut net = Network::new(2, LinkModel::default(), DeviceEnergyModel::default())
                .with_fault_plan(plan)
                .with_retry_policy(RetryPolicy::unlimited());
            let mut bat = BatteryState::new(1e9).unwrap();
            let mut meter = PowerMeter::new();
            let mut trace = Vec::new();
            for i in 0..10 {
                let d = net
                    .send_reliable(i % 2, Message::EnergyReport, &mut bat, &mut meter)
                    .unwrap();
                trace.push((d.attempts, d.delivered, d.acked));
            }
            (trace, bat.used().to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}
