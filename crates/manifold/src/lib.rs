//! Video comparison by domain adaptation on the Grassmann manifold.
//!
//! This crate implements Section III of the paper end-to-end:
//!
//! 1. A video item is `k` key-frame feature vectors in `ℝ^α` ([`VideoItem`]).
//! 2. PCA projects each item onto a `β`-dimensional subspace whose
//!    orthonormal basis is a point on the Grassmann manifold
//!    `Gr(β, ℝ^α)` ([`Subspace`]).
//! 3. The geodesic flow between two such points induces a kernel `W`
//!    (Eq. 1–2) — [`GeodesicFlowKernel`]. We never materialize the `α × α`
//!    kernel: the orthogonal complement's contribution is computed through
//!    `(I − xxᵀ)z`, so the cost is `O(αβ²)` instead of `O(α²(α−β))`, which
//!    is what makes the paper's `α = 4180` tractable.
//! 4. The kernel distance between the items' frames (Eq. 3), its mean
//!    (Eq. 4), and the similarity `e^{−M_d}` (Eq. 5) are in [`kernel`] and
//!    [`similarity`].
//! 5. [`matcher`] ranks a training library against an incoming feed and
//!    returns the closest training item — the controller uses this to pick
//!    the detection algorithm (Section IV-B.2).

pub mod gfk;
pub mod kernel;
pub mod matcher;
pub mod similarity;
pub mod subspace;
pub mod video;

pub use gfk::GeodesicFlowKernel;
pub use kernel::{kernel_distance_matrix, mean_manifold_distance};
pub use matcher::{MatchResult, TrainingLibrary};
pub use similarity::video_similarity;
pub use subspace::Subspace;
pub use video::VideoItem;

use std::error::Error;
use std::fmt;

/// Errors produced by the manifold pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManifoldError {
    /// A video item had too few frames or a zero feature dimension.
    BadVideoItem(String),
    /// The two subspaces have mismatched shapes.
    SubspaceMismatch {
        /// Shape of the first basis.
        lhs: (usize, usize),
        /// Shape of the second basis.
        rhs: (usize, usize),
    },
    /// An inner linear-algebra step failed.
    Numeric(String),
    /// The training library is empty.
    EmptyLibrary,
}

impl fmt::Display for ManifoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifoldError::BadVideoItem(msg) => write!(f, "bad video item: {msg}"),
            ManifoldError::SubspaceMismatch { lhs, rhs } => write!(
                f,
                "subspace shapes differ: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ManifoldError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            ManifoldError::EmptyLibrary => write!(f, "training library is empty"),
        }
    }
}

impl Error for ManifoldError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ManifoldError>;

impl From<eecs_linalg::LinalgError> for ManifoldError {
    fn from(e: eecs_linalg::LinalgError) -> Self {
        ManifoldError::Numeric(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ManifoldError::EmptyLibrary.to_string().contains("empty"));
    }
}
