//! The geodesic flow kernel (Eq. 1–2 of the paper).
//!
//! Given two points `x, z ∈ Gr(β, ℝ^α)`, the geodesic flow
//! `Φ(y), y ∈ [0, 1]` connects them; the kernel
//! `G = 2·∫₀¹ Φ(y) Φ(y)ᵀ dy` has the closed form (Gong et al., CVPR'12):
//!
//! ```text
//! G = [xU  x̃V] [Λ₁ Λ₂; Λ₂ Λ₃] [Uᵀxᵀ; Vᵀx̃ᵀ]
//! λ₁ᵢ = 1 + sin(2θᵢ)/(2θᵢ),  λ₂ᵢ = (cos(2θᵢ) − 1)/(2θᵢ),
//! λ₃ᵢ = 1 − sin(2θᵢ)/(2θᵢ)
//! ```
//!
//! where `θᵢ` are the principal angles and `U, V` come from the coupled
//! SVDs `xᵀz = U Γ Rᵀ`, `x̃ᵀz = −V Σ Rᵀ`.
//!
//! **Implementation note.** We never form the `α × (α−β)` orthogonal
//! complement `x̃`. Because `x̃x̃ᵀ = I − xxᵀ`,
//!
//! ```text
//! x̃V = −(I − xxᵀ) z R Σ⁻¹,
//! ```
//!
//! so both factor blocks `A = xU` and `B = x̃V` are `α × β` and the whole
//! construction is `O(αβ²)` — the difference between seconds and hours at
//! the paper's `α = 4180`.

use crate::subspace::Subspace;
use crate::{ManifoldError, Result};
use eecs_linalg::svd::thin_svd;
use eecs_linalg::Mat;

/// The geodesic flow kernel between two subspaces, stored in factored form.
#[derive(Debug, Clone)]
pub struct GeodesicFlowKernel {
    /// `A = xU`, `α × β`.
    a: Mat,
    /// `B = x̃V`, `α × β` (columns are zero where `θᵢ = 0`).
    b: Mat,
    /// Principal angles `θᵢ`.
    thetas: Vec<f64>,
    /// Λ₁ diagonal.
    l1: Vec<f64>,
    /// Λ₂ diagonal.
    l2: Vec<f64>,
    /// Λ₃ diagonal.
    l3: Vec<f64>,
}

impl GeodesicFlowKernel {
    /// Computes the kernel between the source subspace `x` and target
    /// subspace `z` (the paper's `x_i`, `z_j`).
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::SubspaceMismatch`] when ambient dimensions
    /// differ, or [`ManifoldError::Numeric`] on SVD failure.
    pub fn between(x: &Subspace, z: &Subspace) -> Result<GeodesicFlowKernel> {
        if x.ambient_dim() != z.ambient_dim() {
            return Err(ManifoldError::SubspaceMismatch {
                lhs: x.basis().shape(),
                rhs: z.basis().shape(),
            });
        }
        // Work with the smaller common dimension: principal angles are
        // defined for min(dim_x, dim_z) directions.
        let beta = x.dim().min(z.dim());
        let xb = x.basis().submatrix(0, 0, x.ambient_dim(), beta);
        let zb = z.basis().submatrix(0, 0, z.ambient_dim(), beta);

        // Coupled SVD: xᵀz = U Γ Rᵀ.
        let xtz = xb.transpose_matmul(&zb)?;
        let svd = thin_svd(&xtz);
        let u = svd.u.clone(); // β × β
        let r = svd.v.clone(); // β × β
        let gammas: Vec<f64> = svd
            .singular_values
            .iter()
            .map(|&g| g.clamp(0.0, 1.0))
            .collect();
        let thetas: Vec<f64> = gammas.iter().map(|&g| g.acos()).collect();

        // A = x U.
        let a = xb.matmul(&u);

        // B = x̃V = −(z − x(xᵀz)) R Σ⁻¹ with Σᵢ = sin θᵢ.
        let x_xtz = xb.matmul(&xtz); // α × β
        let resid = &zb - &x_xtz; // (I − xxᵀ) z
        let resid_r = resid.matmul(&r); // α × β
        let mut b = Mat::zeros(x.ambient_dim(), beta);
        for (i, &theta) in thetas.iter().enumerate() {
            let s = theta.sin();
            if s > 1e-9 {
                let col: Vec<f64> = resid_r.col(i).iter().map(|v| -v / s).collect();
                b.set_col(i, &col);
            }
            // θ ≈ 0 ⇒ λ₂ = λ₃ = 0 and the B column never contributes.
        }

        let mut l1 = Vec::with_capacity(beta);
        let mut l2 = Vec::with_capacity(beta);
        let mut l3 = Vec::with_capacity(beta);
        for &theta in &thetas {
            if theta < 1e-7 {
                l1.push(2.0);
                l2.push(0.0);
                l3.push(0.0);
            } else {
                let s2t = (2.0 * theta).sin();
                let c2t = (2.0 * theta).cos();
                l1.push(1.0 + s2t / (2.0 * theta));
                l2.push((c2t - 1.0) / (2.0 * theta));
                l3.push(1.0 - s2t / (2.0 * theta));
            }
        }

        Ok(GeodesicFlowKernel {
            a,
            b,
            thetas,
            l1,
            l2,
            l3,
        })
    }

    /// Ambient dimension `α`.
    pub fn ambient_dim(&self) -> usize {
        self.a.rows()
    }

    /// Number of principal directions `β`.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// The principal angles between the two subspaces.
    pub fn principal_angles(&self) -> &[f64] {
        &self.thetas
    }

    /// Projects a feature vector onto the `A` and `B` factor blocks,
    /// returning `(Aᵀu, Bᵀu)` — the O(αβ) step from which all kernel
    /// quantities follow.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != ambient_dim()`.
    pub fn project(&self, u: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(u.len(), self.ambient_dim(), "feature dimension mismatch");
        let beta = self.dim();
        let mut pa = vec![0.0; beta];
        let mut pb = vec![0.0; beta];
        for (row, &uv) in u.iter().enumerate() {
            if uv == 0.0 {
                continue;
            }
            for c in 0..beta {
                pa[c] += self.a[(row, c)] * uv;
                pb[c] += self.b[(row, c)] * uv;
            }
        }
        (pa, pb)
    }

    /// The kernel inner product `uᵀ G v` (right-hand side of Eq. 1 for a
    /// pair of frame features).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner_product(&self, u: &[f64], v: &[f64]) -> f64 {
        let (ua, ub) = self.project(u);
        let (va, vb) = self.project(v);
        self.inner_product_projected(&ua, &ub, &va, &vb)
    }

    /// Inner product from pre-computed projections (use with
    /// [`GeodesicFlowKernel::project`] to amortize over many pairs).
    pub fn inner_product_projected(&self, ua: &[f64], ub: &[f64], va: &[f64], vb: &[f64]) -> f64 {
        let mut total = 0.0;
        for i in 0..self.dim() {
            total += ua[i] * self.l1[i] * va[i]
                + ua[i] * self.l2[i] * vb[i]
                + ub[i] * self.l2[i] * va[i]
                + ub[i] * self.l3[i] * vb[i];
        }
        total
    }

    /// The squared kernel distance `(u − v)ᵀ G (u − v)` between two frame
    /// features (one entry of the Eq. 3 matrix).
    pub fn sq_distance(&self, u: &[f64], v: &[f64]) -> f64 {
        let diff: Vec<f64> = u.iter().zip(v).map(|(a, b)| a - b).collect();
        self.inner_product(&diff, &diff).max(0.0)
    }

    /// Materializes the full `α × α` kernel matrix. **Test/diagnostic use
    /// only** — O(α²β) time and O(α²) memory.
    pub fn materialize(&self) -> Mat {
        let alpha = self.ambient_dim();
        let beta = self.dim();
        let mut g = Mat::zeros(alpha, alpha);
        for i in 0..beta {
            rank_one_update(&mut g, &self.a.col(i), &self.a.col(i), self.l1[i]);
            rank_one_update(&mut g, &self.a.col(i), &self.b.col(i), self.l2[i]);
            rank_one_update(&mut g, &self.b.col(i), &self.a.col(i), self.l2[i]);
            rank_one_update(&mut g, &self.b.col(i), &self.b.col(i), self.l3[i]);
        }
        g
    }

    /// Evaluates a point `Φ(y)` on the geodesic flow (Eq. 1's parameterized
    /// path): `Φ(y) = A cos(Θy) − B sin(Θy)` — exposed for quadrature
    /// cross-checks.
    pub fn flow_point(&self, y: f64) -> Mat {
        let alpha = self.ambient_dim();
        let beta = self.dim();
        let mut phi = Mat::zeros(alpha, beta);
        for c in 0..beta {
            let cy = (self.thetas[c] * y).cos();
            let sy = (self.thetas[c] * y).sin();
            for r in 0..alpha {
                phi[(r, c)] = self.a[(r, c)] * cy - self.b[(r, c)] * sy;
            }
        }
        phi
    }
}

fn rank_one_update(g: &mut Mat, u: &[f64], v: &[f64], scale: f64) {
    if scale == 0.0 {
        return;
    }
    for (i, &ui) in u.iter().enumerate() {
        if ui == 0.0 {
            continue;
        }
        for (j, &vj) in v.iter().enumerate() {
            g[(i, j)] += scale * ui * vj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace::Subspace;
    use crate::video::VideoItem;
    use rand::{RngExt, SeedableRng};

    fn random_subspace(alpha: usize, beta: usize, seed: u64) -> Subspace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..alpha + 2)
            .map(|_| (0..alpha).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let item = VideoItem::from_frames("r", &frames).unwrap();
        Subspace::from_video(&item, beta).unwrap()
    }

    #[test]
    fn identical_subspaces_give_projection_kernel() {
        // θ = 0 everywhere ⇒ G = 2·x xᵀ.
        let s = random_subspace(6, 2, 1);
        let gfk = GeodesicFlowKernel::between(&s, &s).unwrap();
        assert!(gfk.principal_angles().iter().all(|&t| t < 1e-6));
        let g = gfk.materialize();
        let xxt = s.basis().matmul(&s.basis().transpose()).scale(2.0);
        assert!(g.approx_eq(&xxt, 1e-8), "G != 2xxᵀ");
    }

    #[test]
    fn kernel_is_symmetric_psd() {
        let x = random_subspace(8, 3, 2);
        let z = random_subspace(8, 3, 3);
        let g = GeodesicFlowKernel::between(&x, &z).unwrap().materialize();
        assert!(g.approx_eq(&g.transpose(), 1e-9), "not symmetric");
        // PSD: vᵀGv ≥ 0 for random v.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let v: Vec<f64> = (0..8).map(|_| rng.random_range(-1.0..1.0)).collect();
            let gv = g.matvec(&v);
            let q: f64 = v.iter().zip(&gv).map(|(a, b)| a * b).sum();
            assert!(q >= -1e-9, "negative quadratic form {q}");
        }
    }

    #[test]
    fn closed_form_matches_numeric_quadrature() {
        // G must equal 2·∫₀¹ Φ(y)Φ(y)ᵀ dy.
        let x = random_subspace(7, 2, 5);
        let z = random_subspace(7, 2, 6);
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        let g = gfk.materialize();
        // Simpson quadrature over [0,1].
        let n = 200;
        let mut quad = Mat::zeros(7, 7);
        for i in 0..=n {
            let y = i as f64 / n as f64;
            let w = if i == 0 || i == n {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            let phi = gfk.flow_point(y);
            let outer = phi.matmul(&phi.transpose());
            quad += &outer.scale(w);
        }
        quad = quad.scale(2.0 / (3.0 * n as f64));
        assert!(
            g.approx_eq(&quad, 1e-6),
            "closed form and quadrature disagree: max diff {}",
            (&g - &quad).max_abs()
        );
    }

    #[test]
    fn flow_endpoints_span_source_and_target() {
        let x = random_subspace(6, 2, 7);
        let z = random_subspace(6, 2, 8);
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        // Φ(0) = A = xU spans the same subspace as x.
        let phi0 = gfk.flow_point(0.0);
        let proj = x.basis().matmul(&x.basis().transpose());
        let recon = proj.matmul(&phi0);
        assert!(recon.approx_eq(&phi0, 1e-8), "Φ(0) not in span(x)");
        // Φ(1) spans the same subspace as z.
        let phi1 = gfk.flow_point(1.0);
        let projz = z.basis().matmul(&z.basis().transpose());
        let reconz = projz.matmul(&phi1);
        assert!(reconz.approx_eq(&phi1, 1e-8), "Φ(1) not in span(z)");
    }

    #[test]
    fn inner_product_matches_materialized() {
        let x = random_subspace(9, 3, 9);
        let z = random_subspace(9, 3, 10);
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        let g = gfk.materialize();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let u: Vec<f64> = (0..9).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f64> = (0..9).map(|_| rng.random_range(-1.0..1.0)).collect();
            let fast = gfk.inner_product(&u, &v);
            let gv = g.matvec(&v);
            let slow: f64 = u.iter().zip(&gv).map(|(a, b)| a * b).sum();
            assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
        }
    }

    #[test]
    fn sq_distance_zero_for_equal_vectors() {
        let x = random_subspace(5, 2, 12);
        let z = random_subspace(5, 2, 13);
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        let u = vec![0.3, -0.2, 0.9, 0.0, 0.4];
        assert!(gfk.sq_distance(&u, &u) < 1e-12);
    }

    #[test]
    fn distance_grows_with_angle() {
        // The kernel distance between a fixed pair of vectors should be
        // larger for subspaces that are further apart on the manifold...
        // verified indirectly: mean principal angle correlates with
        // distance between disjoint spans.
        let x = random_subspace(10, 3, 14);
        let near = x.clone();
        let far = random_subspace(10, 3, 15);
        let g_near = GeodesicFlowKernel::between(&x, &near).unwrap();
        let g_far = GeodesicFlowKernel::between(&x, &far).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(g_far.principal_angles()) > mean(g_near.principal_angles()));
    }

    #[test]
    fn ambient_mismatch_rejected() {
        let x = random_subspace(6, 2, 16);
        let z = random_subspace(7, 2, 17);
        assert!(matches!(
            GeodesicFlowKernel::between(&x, &z),
            Err(ManifoldError::SubspaceMismatch { .. })
        ));
    }

    #[test]
    fn different_beta_uses_common_dim() {
        let x = random_subspace(8, 2, 18);
        let z = random_subspace(8, 4, 19);
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        assert_eq!(gfk.dim(), 2);
    }
}
