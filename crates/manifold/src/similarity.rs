//! Video similarity (Eq. 5 of the paper): `Sim(T, V) = e^{−M_d(T, V)}`.

use crate::gfk::GeodesicFlowKernel;
use crate::kernel::mean_manifold_distance;
use crate::subspace::Subspace;
use crate::video::VideoItem;
use crate::Result;

/// Configuration of the full similarity pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityConfig {
    /// PCA subspace dimension `β` (Table I).
    pub beta: usize,
    /// Distance scale applied before exponentiation:
    /// `Sim = exp(−M_d / scale)`. The paper uses raw distances
    /// (`scale = 1`); the scale knob lets callers express the same ranking
    /// in a different dynamic range (it is strictly monotone, so rankings —
    /// which are all EECS consumes — are unchanged).
    pub scale: f64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            beta: 10,
            scale: 1.0,
        }
    }
}

/// Computes `Sim(T, V) ∈ [0, 1]` between two video items via the full
/// Section III pipeline: PCA subspaces → geodesic flow kernel → mean kernel
/// distance → exponential map.
///
/// # Errors
///
/// Propagates subspace and kernel errors (degenerate items, dimension
/// mismatches).
pub fn video_similarity(t: &VideoItem, v: &VideoItem, config: &SimilarityConfig) -> Result<f64> {
    let x = Subspace::from_video(t, config.beta)?;
    let z = Subspace::from_video(v, config.beta)?;
    let gfk = GeodesicFlowKernel::between(&x, &z)?;
    let md = mean_manifold_distance(t, v, &gfk)?;
    Ok((-md / config.scale.max(1e-12)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn random_item(k: usize, alpha: usize, seed: u64) -> VideoItem {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..alpha).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        VideoItem::from_frames("r", &frames).unwrap()
    }

    #[test]
    fn similarity_in_unit_interval() {
        let t = random_item(8, 10, 1);
        let v = random_item(8, 10, 2);
        let s = video_similarity(&t, &v, &SimilarityConfig::default()).unwrap();
        assert!((0.0..=1.0).contains(&s), "s={s}");
    }

    #[test]
    fn symmetric_in_arguments() {
        let t = random_item(6, 8, 3);
        let v = random_item(6, 8, 4);
        let cfg = SimilarityConfig {
            beta: 3,
            scale: 1.0,
        };
        let ab = video_similarity(&t, &v, &cfg).unwrap();
        let ba = video_similarity(&v, &t, &cfg).unwrap();
        // The kernel is symmetric in the subspaces and Eq. 3 is symmetric
        // under (t, v) swap up to transposition, so similarity matches.
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn self_similarity_highest_in_row() {
        // Items with structured, distinct generative processes: similarity
        // of an item with (a fresh sample of) itself beats cross items.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let gen = |dir: usize, rng: &mut rand::rngs::StdRng| -> VideoItem {
            // Non-negative histogram-like features with scene-specific means.
            let frames: Vec<Vec<f64>> = (0..10)
                .map(|_| {
                    let a = rng.random_range(-0.2..0.2);
                    let mut f = vec![0.05; 6];
                    f[dir] = 1.0 + a;
                    f[(dir + 1) % 6] = 0.5 + 0.5 * a;
                    f
                })
                .collect();
            VideoItem::from_frames(format!("g{dir}"), &frames).unwrap()
        };
        let cfg = SimilarityConfig {
            beta: 2,
            scale: 1.0,
        };
        let t0 = gen(0, &mut rng);
        let v0 = gen(0, &mut rng);
        let v3 = gen(3, &mut rng);
        let s_same = video_similarity(&t0, &v0, &cfg).unwrap();
        let s_diff = video_similarity(&t0, &v3, &cfg).unwrap();
        assert!(s_same > s_diff, "same {s_same} <= diff {s_diff}");
    }

    #[test]
    fn scale_is_monotone() {
        let t = random_item(6, 8, 6);
        let v = random_item(6, 8, 7);
        let s1 = video_similarity(
            &t,
            &v,
            &SimilarityConfig {
                beta: 3,
                scale: 1.0,
            },
        )
        .unwrap();
        let s2 = video_similarity(
            &t,
            &v,
            &SimilarityConfig {
                beta: 3,
                scale: 2.0,
            },
        )
        .unwrap();
        // Larger scale compresses distance → higher similarity.
        assert!(s2 >= s1);
    }

    #[test]
    fn dissimilar_items_decay_toward_zero() {
        // Hugely different magnitudes → large manifold distance → sim ≈ 0
        // ("the similarity approaches 0 exponentially fast", Section III).
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let small: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..8).map(|_| rng.random_range(-0.1..0.1)).collect())
            .collect();
        let big: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..8).map(|_| rng.random_range(-10.0..10.0)).collect())
            .collect();
        let t = VideoItem::from_frames("s", &small).unwrap();
        let v = VideoItem::from_frames("b", &big).unwrap();
        let s = video_similarity(
            &t,
            &v,
            &SimilarityConfig {
                beta: 3,
                scale: 1.0,
            },
        )
        .unwrap();
        assert!(s < 0.05, "s={s}");
    }
}
