//! Points on the Grassmann manifold.
//!
//! A video item's PCA basis — `β` orthonormal `α`-vectors — is a point on
//! `Gr(β, ℝ^α)` (Section III of the paper: `x_i`, `z_j`).

use crate::video::VideoItem;
use crate::{ManifoldError, Result};
use eecs_linalg::qr::orthonormal_columns;
use eecs_linalg::Mat;

/// An orthonormal `α × β` basis — a point on the Grassmann manifold.
#[derive(Debug, Clone)]
pub struct Subspace {
    basis: Mat,
}

impl Subspace {
    /// Computes the **uncentered** PCA subspace of a video item (the
    /// paper's projection of `t_i` onto `ℝ^β`).
    ///
    /// Uncentered PCA — the top right singular vectors of the raw `k × α`
    /// feature matrix — matches the reference GFK implementation (Gong et
    /// al.'s code does not center the data). This matters: the first
    /// principal direction then tracks the feature *mean*, so two feeds
    /// with different static appearance (different rooms, different
    /// cameras) occupy measurably different points on the manifold even
    /// when their frame-to-frame variation is similar.
    ///
    /// `beta` is clamped to the matrix rank; the basis is re-orthonormalized
    /// via QR to guard against numerical drift.
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::BadVideoItem`] when `beta` is zero or the
    /// item is all-zero.
    pub fn from_video(item: &VideoItem, beta: usize) -> Result<Subspace> {
        if beta == 0 {
            return Err(ManifoldError::BadVideoItem("beta must be positive".into()));
        }
        let svd = eecs_linalg::svd::thin_svd(item.features());
        let scale = svd.singular_values.first().copied().unwrap_or(0.0);
        if scale <= 1e-12 {
            return Err(ManifoldError::BadVideoItem(
                "video item has no energy: all features zero".into(),
            ));
        }
        let informative = svd
            .singular_values
            .iter()
            .take_while(|&&s| s > 1e-9 * scale)
            .count()
            .min(beta);
        let trimmed = svd.v.submatrix(0, 0, item.feature_dim(), informative);
        let basis = orthonormal_columns(&trimmed, 1e-9)?;
        if basis.cols() == 0 {
            return Err(ManifoldError::BadVideoItem(
                "video item has no usable principal directions".into(),
            ));
        }
        Ok(Subspace { basis })
    }

    /// Wraps an existing basis, re-orthonormalizing it.
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::Numeric`] when orthonormalization fails or
    /// the basis has no usable columns.
    pub fn from_basis(basis: Mat) -> Result<Subspace> {
        let ortho = orthonormal_columns(&basis, 1e-12)?;
        if ortho.cols() == 0 {
            return Err(ManifoldError::Numeric("basis has rank zero".into()));
        }
        Ok(Subspace { basis: ortho })
    }

    /// Ambient dimension `α`.
    pub fn ambient_dim(&self) -> usize {
        self.basis.rows()
    }

    /// Subspace dimension `β`.
    pub fn dim(&self) -> usize {
        self.basis.cols()
    }

    /// The orthonormal `α × β` basis matrix.
    pub fn basis(&self) -> &Mat {
        &self.basis
    }

    /// Principal angles between two subspaces (radians, non-decreasing) —
    /// `arccos` of the singular values of `x₁ᵀ x₂`.
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::SubspaceMismatch`] for different ambient
    /// dimensions.
    pub fn principal_angles(&self, other: &Subspace) -> Result<Vec<f64>> {
        if self.ambient_dim() != other.ambient_dim() {
            return Err(ManifoldError::SubspaceMismatch {
                lhs: self.basis.shape(),
                rhs: other.basis.shape(),
            });
        }
        let xtz = self.basis.transpose_matmul(&other.basis)?;
        let svd = eecs_linalg::svd::thin_svd(&xtz);
        let mut angles: Vec<f64> = svd
            .singular_values
            .iter()
            .map(|&s| s.clamp(-1.0, 1.0).acos())
            .collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(angles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoItem;
    use rand::{RngExt, SeedableRng};

    fn random_item(k: usize, alpha: usize, seed: u64) -> VideoItem {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..alpha).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        VideoItem::from_frames("r", &frames).unwrap()
    }

    #[test]
    fn basis_is_orthonormal() {
        let item = random_item(10, 8, 1);
        let s = Subspace::from_video(&item, 4).unwrap();
        let gram = s.basis().transpose_matmul(s.basis()).unwrap();
        assert!(gram.approx_eq(&Mat::identity(4), 1e-9));
        assert_eq!(s.ambient_dim(), 8);
        assert_eq!(s.dim(), 4);
    }

    #[test]
    fn beta_clamped_to_rank() {
        let item = random_item(4, 20, 2); // rank ≤ 4 (uncentered)
        let s = Subspace::from_video(&item, 10).unwrap();
        assert!(s.dim() <= 4);
    }

    #[test]
    fn identical_items_have_zero_angles() {
        let item = random_item(10, 12, 3);
        let a = Subspace::from_video(&item, 3).unwrap();
        let b = Subspace::from_video(&item, 3).unwrap();
        let angles = a.principal_angles(&b).unwrap();
        assert!(angles.iter().all(|&t| t < 1e-6), "{angles:?}");
    }

    #[test]
    fn orthogonal_subspaces_have_right_angles() {
        // Span{e0,e1} vs span{e2,e3} in R^4.
        let a = Subspace::from_basis(Mat::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        ]))
        .unwrap();
        let b = Subspace::from_basis(Mat::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
        ]))
        .unwrap();
        let angles = a.principal_angles(&b).unwrap();
        for t in angles {
            assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        }
    }

    #[test]
    fn angle_mismatch_error() {
        let a = Subspace::from_video(&random_item(6, 5, 4), 2).unwrap();
        let b = Subspace::from_video(&random_item(6, 7, 5), 2).unwrap();
        assert!(matches!(
            a.principal_angles(&b),
            Err(ManifoldError::SubspaceMismatch { .. })
        ));
    }

    #[test]
    fn constant_video_keeps_only_the_mean_direction() {
        // Uncentered PCA: identical frames still define a rank-1 subspace
        // spanned by the (normalized) mean feature vector.
        let frames = vec![vec![1.0, 2.0, 3.0]; 5];
        let item = VideoItem::from_frames("const", &frames).unwrap();
        let s = Subspace::from_video(&item, 3).unwrap();
        assert_eq!(s.dim(), 1);
        let b = s.basis().col(0);
        let expected = [1.0, 2.0, 3.0].map(|v: f64| v / 14.0f64.sqrt());
        let aligned: f64 = b.iter().zip(&expected).map(|(x, y)| x * y).sum();
        assert!(aligned.abs() > 0.999, "basis {b:?}");
    }

    #[test]
    fn zero_video_rejected() {
        let frames = vec![vec![0.0, 0.0, 0.0]; 5];
        let item = VideoItem::from_frames("zero", &frames).unwrap();
        assert!(Subspace::from_video(&item, 2).is_err());
    }

    #[test]
    fn rejects_zero_beta() {
        let item = random_item(5, 4, 6);
        assert!(Subspace::from_video(&item, 0).is_err());
    }
}
