//! Matching incoming feeds against the training library.
//!
//! Section IV-B.2: the controller "determines the video similarities between
//! the input and the items in its training set, and identifies the closest
//! training item `T_i* ∈ 𝒯`". The library caches each training item's PCA
//! subspace so a query costs one GFK per training item.

use crate::gfk::GeodesicFlowKernel;
use crate::kernel::mean_manifold_distance;
use crate::similarity::SimilarityConfig;
use crate::subspace::Subspace;
use crate::video::VideoItem;
use crate::{ManifoldError, Result};

/// The outcome of matching one query against the library.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Index of the best training item.
    pub best_index: usize,
    /// Name of the best training item.
    pub best_name: String,
    /// Similarity to the best item (Eq. 5).
    pub best_similarity: f64,
    /// Similarity to every training item, in library order.
    pub similarities: Vec<f64>,
}

/// A library of training video items with cached subspaces.
#[derive(Debug, Clone)]
pub struct TrainingLibrary {
    config: SimilarityConfig,
    items: Vec<(VideoItem, Subspace)>,
}

impl TrainingLibrary {
    /// Creates an empty library.
    pub fn new(config: SimilarityConfig) -> TrainingLibrary {
        TrainingLibrary {
            config,
            items: Vec::new(),
        }
    }

    /// Adds a training item, computing and caching its subspace.
    ///
    /// # Errors
    ///
    /// Propagates subspace construction failures (degenerate items).
    pub fn add(&mut self, item: VideoItem) -> Result<()> {
        let subspace = Subspace::from_video(&item, self.config.beta)?;
        self.items.push((item, subspace));
        Ok(())
    }

    /// Number of training items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Names of the stored items in order.
    pub fn names(&self) -> Vec<&str> {
        self.items.iter().map(|(i, _)| i.name()).collect()
    }

    /// The stored item at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn item(&self, index: usize) -> &VideoItem {
        &self.items[index].0
    }

    /// Matches a query feed against every training item and returns the
    /// closest (Section IV-B.2).
    ///
    /// # Errors
    ///
    /// * [`ManifoldError::EmptyLibrary`] when no items were added,
    /// * propagated subspace/kernel errors.
    pub fn best_match(&self, query: &VideoItem) -> Result<MatchResult> {
        if self.items.is_empty() {
            return Err(ManifoldError::EmptyLibrary);
        }
        let qsub = Subspace::from_video(query, self.config.beta)?;
        let mut similarities = Vec::with_capacity(self.items.len());
        for (item, sub) in &self.items {
            let gfk = GeodesicFlowKernel::between(sub, &qsub)?;
            let md = mean_manifold_distance(item, query, &gfk)?;
            similarities.push((-md / self.config.scale.max(1e-12)).exp());
        }
        let best_index = similarities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty library");
        Ok(MatchResult {
            best_index,
            best_name: self.items[best_index].0.name().to_string(),
            best_similarity: similarities[best_index],
            similarities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    /// Items from generative process `dir` concentrate variance on one axis
    /// pair; the matcher should recover which process produced a query.
    fn gen(dir: usize, seed: u64) -> VideoItem {
        // Scene type `dir` concentrates histogram mass on a pair of bins
        // (distinct non-negative means, like real HOG/BoW features), with
        // small within-scene variation.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                let a = rng.random_range(-0.15..0.15);
                let b = rng.random_range(-0.15..0.15);
                let mut f = vec![0.05; 8];
                f[dir] = 1.0 + a;
                f[(dir + 1) % 8] = 0.7 + 0.5 * a + b;
                f
            })
            .collect();
        VideoItem::from_frames(format!("train-{dir}"), &frames).unwrap()
    }

    fn library() -> TrainingLibrary {
        let mut lib = TrainingLibrary::new(SimilarityConfig {
            beta: 2,
            scale: 1.0,
        });
        for dir in [0usize, 3, 6] {
            lib.add(gen(dir, 100 + dir as u64)).unwrap();
        }
        lib
    }

    #[test]
    fn empty_library_errors() {
        let lib = TrainingLibrary::new(SimilarityConfig::default());
        assert!(matches!(
            lib.best_match(&gen(0, 1)),
            Err(ManifoldError::EmptyLibrary)
        ));
    }

    #[test]
    fn recovers_generating_process() {
        let lib = library();
        for (i, dir) in [0usize, 3, 6].iter().enumerate() {
            let query = gen(*dir, 999 + *dir as u64);
            let m = lib.best_match(&query).unwrap();
            assert_eq!(
                m.best_index, i,
                "query from dir {dir} matched {}",
                m.best_name
            );
        }
    }

    #[test]
    fn result_fields_consistent() {
        let lib = library();
        let m = lib.best_match(&gen(3, 55)).unwrap();
        assert_eq!(m.similarities.len(), 3);
        assert_eq!(m.best_similarity, m.similarities[m.best_index]);
        assert!(m
            .similarities
            .iter()
            .all(|&s| s <= m.best_similarity + 1e-12));
        assert_eq!(m.best_name, "train-3");
    }

    #[test]
    fn library_accessors() {
        let lib = library();
        assert_eq!(lib.len(), 3);
        assert!(!lib.is_empty());
        assert_eq!(lib.names(), vec!["train-0", "train-3", "train-6"]);
        assert_eq!(lib.item(1).name(), "train-3");
    }

    #[test]
    fn similarities_in_unit_interval() {
        let lib = library();
        let m = lib.best_match(&gen(0, 77)).unwrap();
        assert!(m.similarities.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
