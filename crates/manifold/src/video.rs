//! Video items: key-frame feature matrices.

use crate::{ManifoldError, Result};
use eecs_linalg::Mat;

/// A video item `T_i` or `V_j`: `k` key frames, each an `α`-dimensional
/// feature vector (Table I of the paper: `t_i ∈ ℝ^{k₁×α}`).
#[derive(Debug, Clone)]
pub struct VideoItem {
    name: String,
    features: Mat,
}

impl VideoItem {
    /// Wraps a `k × α` feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::BadVideoItem`] for fewer than 2 frames or a
    /// zero feature dimension.
    pub fn new(name: impl Into<String>, features: Mat) -> Result<VideoItem> {
        if features.rows() < 2 {
            return Err(ManifoldError::BadVideoItem(
                "need at least 2 key frames".into(),
            ));
        }
        if features.cols() == 0 {
            return Err(ManifoldError::BadVideoItem("zero feature dimension".into()));
        }
        Ok(VideoItem {
            name: name.into(),
            features,
        })
    }

    /// Builds an item from per-frame feature vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VideoItem::new`], plus inconsistent lengths.
    pub fn from_frames(name: impl Into<String>, frames: &[Vec<f64>]) -> Result<VideoItem> {
        if frames.len() < 2 {
            return Err(ManifoldError::BadVideoItem(
                "need at least 2 key frames".into(),
            ));
        }
        let alpha = frames[0].len();
        if frames.iter().any(|f| f.len() != alpha) {
            return Err(ManifoldError::BadVideoItem(
                "inconsistent frame feature lengths".into(),
            ));
        }
        VideoItem::new(name, Mat::from_row_vecs(frames))
    }

    /// The item's label (e.g. `T_1.2` for dataset 1, camera 2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of key frames `k`.
    pub fn num_frames(&self) -> usize {
        self.features.rows()
    }

    /// Feature dimension `α`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The `k × α` feature matrix.
    pub fn features(&self) -> &Mat {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let item = VideoItem::from_frames(
            "T_1.1",
            &[
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
        )
        .unwrap();
        assert_eq!(item.name(), "T_1.1");
        assert_eq!(item.num_frames(), 3);
        assert_eq!(item.feature_dim(), 3);
    }

    #[test]
    fn rejects_single_frame() {
        assert!(VideoItem::from_frames("x", &[vec![1.0]]).is_err());
    }

    #[test]
    fn rejects_inconsistent_frames() {
        assert!(VideoItem::from_frames("x", &[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn rejects_zero_dim() {
        assert!(VideoItem::new("x", Mat::zeros(3, 0)).is_err());
    }
}
