//! Kernel distances between video items (Eq. 3–4 of the paper).

use crate::gfk::GeodesicFlowKernel;
use crate::video::VideoItem;
use crate::{ManifoldError, Result};
use eecs_linalg::Mat;

/// The `k₁ × k₂` kernel distance matrix `K(T_i, V_j)` of Eq. 3: entry
/// `(m₁, m₂)` is the squared kernel distance between frame `m₁` of `t` and
/// frame `m₂` of `v` under the geodesic flow metric.
///
/// # Errors
///
/// Returns [`ManifoldError::BadVideoItem`] when the items' feature
/// dimensions differ from the kernel's ambient dimension.
pub fn kernel_distance_matrix(
    t: &VideoItem,
    v: &VideoItem,
    gfk: &GeodesicFlowKernel,
) -> Result<Mat> {
    if t.feature_dim() != gfk.ambient_dim() || v.feature_dim() != gfk.ambient_dim() {
        return Err(ManifoldError::BadVideoItem(format!(
            "feature dims {} / {} do not match kernel ambient dim {}",
            t.feature_dim(),
            v.feature_dim(),
            gfk.ambient_dim()
        )));
    }
    // Project all frames once: O((k₁+k₂)·αβ), then each pair is O(β).
    let t_proj: Vec<(Vec<f64>, Vec<f64>)> =
        t.features().iter_rows().map(|r| gfk.project(r)).collect();
    let v_proj: Vec<(Vec<f64>, Vec<f64>)> =
        v.features().iter_rows().map(|r| gfk.project(r)).collect();

    let mut k = Mat::zeros(t.num_frames(), v.num_frames());
    for (i, (ta, tb)) in t_proj.iter().enumerate() {
        // ‖t‖²_G
        let tt = gfk.inner_product_projected(ta, tb, ta, tb);
        for (j, (va, vb)) in v_proj.iter().enumerate() {
            let vv = gfk.inner_product_projected(va, vb, va, vb);
            let tv = gfk.inner_product_projected(ta, tb, va, vb);
            // Eq. 3: tᵀWt + vᵀWv − 2tᵀWv, clamped against numerical noise.
            k[(i, j)] = (tt + vv - 2.0 * tv).max(0.0);
        }
    }
    Ok(k)
}

/// The total manifold distance `M_d(T_i, V_j)` of Eq. 4: the mean of all
/// entries of the kernel distance matrix.
///
/// # Errors
///
/// Propagates [`kernel_distance_matrix`] errors.
pub fn mean_manifold_distance(
    t: &VideoItem,
    v: &VideoItem,
    gfk: &GeodesicFlowKernel,
) -> Result<f64> {
    let k = kernel_distance_matrix(t, v, gfk)?;
    let (k1, k2) = k.shape();
    Ok(k.as_slice().iter().sum::<f64>() / (k1 * k2) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace::Subspace;
    use rand::{RngExt, SeedableRng};

    fn random_item(k: usize, alpha: usize, seed: u64) -> VideoItem {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..alpha).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        VideoItem::from_frames("r", &frames).unwrap()
    }

    fn gfk_of(t: &VideoItem, v: &VideoItem, beta: usize) -> GeodesicFlowKernel {
        let x = Subspace::from_video(t, beta).unwrap();
        let z = Subspace::from_video(v, beta).unwrap();
        GeodesicFlowKernel::between(&x, &z).unwrap()
    }

    #[test]
    fn matrix_shape_is_k1_by_k2() {
        let t = random_item(5, 8, 1);
        let v = random_item(7, 8, 2);
        let gfk = gfk_of(&t, &v, 3);
        let k = kernel_distance_matrix(&t, &v, &gfk).unwrap();
        assert_eq!(k.shape(), (5, 7));
    }

    #[test]
    fn entries_nonnegative() {
        let t = random_item(6, 10, 3);
        let v = random_item(6, 10, 4);
        let gfk = gfk_of(&t, &v, 3);
        let k = kernel_distance_matrix(&t, &v, &gfk).unwrap();
        assert!(k.as_slice().iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn distance_of_item_with_itself_has_zero_diagonal() {
        let t = random_item(6, 8, 5);
        let gfk = gfk_of(&t, &t, 3);
        let k = kernel_distance_matrix(&t, &t, &gfk).unwrap();
        for i in 0..6 {
            assert!(k[(i, i)] < 1e-10, "diag {} = {}", i, k[(i, i)]);
        }
    }

    #[test]
    fn matrix_entry_matches_direct_sq_distance() {
        let t = random_item(4, 6, 6);
        let v = random_item(3, 6, 7);
        let gfk = gfk_of(&t, &v, 2);
        let k = kernel_distance_matrix(&t, &v, &gfk).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                let direct = gfk.sq_distance(t.features().row(i), v.features().row(j));
                assert!((k[(i, j)] - direct).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mean_distance_is_mean_of_matrix() {
        let t = random_item(4, 6, 8);
        let v = random_item(5, 6, 9);
        let gfk = gfk_of(&t, &v, 2);
        let k = kernel_distance_matrix(&t, &v, &gfk).unwrap();
        let manual = k.as_slice().iter().sum::<f64>() / 20.0;
        let md = mean_manifold_distance(&t, &v, &gfk).unwrap();
        assert!((md - manual).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let t = random_item(4, 6, 10);
        let v = random_item(4, 7, 11);
        let gfk = gfk_of(&t, &t, 2);
        assert!(kernel_distance_matrix(&t, &v, &gfk).is_err());
    }

    #[test]
    fn similar_items_closer_than_dissimilar() {
        // Items drawn from the same low-dimensional generative subspace
        // should be closer than items from a different subspace.
        // Like real HOG/BoW histograms, the two scene types have distinct
        // non-negative feature *means*, with small within-scene variation.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let gen_a = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let a = rng.random_range(-0.2..0.2);
            let b = rng.random_range(-0.2..0.2);
            vec![1.0 + a, 0.8 + b, 0.1, 0.1 + a, 0.0, 0.05]
        };
        let gen_b = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let a = rng.random_range(-0.2..0.2);
            let b = rng.random_range(-0.2..0.2);
            vec![0.05, 0.1, 0.9 + a, 0.0, 1.1 + b, 0.7 + a]
        };
        let make = |frames: Vec<Vec<f64>>| VideoItem::from_frames("g", &frames).unwrap();
        let t = make((0..12).map(|_| gen_a(&mut rng)).collect());
        let same = make((0..12).map(|_| gen_a(&mut rng)).collect());
        let diff = make((0..12).map(|_| gen_b(&mut rng)).collect());
        let g_same = gfk_of(&t, &same, 2);
        let g_diff = gfk_of(&t, &diff, 2);
        let d_same = mean_manifold_distance(&t, &same, &g_same).unwrap();
        let d_diff = mean_manifold_distance(&t, &diff, &g_diff).unwrap();
        assert!(
            d_same < d_diff,
            "same-domain distance {d_same} should be below cross-domain {d_diff}"
        );
    }
}
