#!/usr/bin/env bash
# Full local CI gate. Runs offline: every external dependency (rand,
# crossbeam, proptest, criterion) is vendored as a minimal shim under
# vendor/ and resolved as a path dependency (see DESIGN.md §7), so no
# registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (pipeline trajectory)"
# One timed iteration per bench: enough to prove the harness runs end to
# end and regenerates a well-formed BENCH_pipeline.json at the repo root.
EECS_BENCH_ITERS=1 cargo bench -q -p eecs-bench --bench pipeline -- --bench
cargo run -q --release -p eecs-bench --bin check_bench

echo "==> fault-matrix smoke (sensor + network + controller chaos)"
# One combined-chaos mission per seed: must complete, stay physical,
# record the scheduled failover, and replay bit-for-bit.
cargo run -q --release -p eecs-bench --bin chaos_smoke -- 1 2 3

echo "CI OK"
