#!/usr/bin/env bash
# Full local CI gate. Runs offline: every external dependency (rand,
# crossbeam, proptest, criterion) is vendored as a minimal shim under
# vendor/ and resolved as a path dependency (see DESIGN.md §7), so no
# registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> golden-master suite (telemetry + report snapshots)"
# Byte-for-byte comparison of the three canonical runs against
# tests/golden/*.json, under both serial and parallel execution.
cargo test -q --test golden_report

echo "==> golden bless-check (snapshots in sync with the code)"
# Regenerate the goldens and fail if the checked-in files are stale —
# i.e. someone changed behavior without re-blessing.
EECS_BLESS=1 cargo test -q --test golden_report
git diff --exit-code -- tests/golden \
  || { echo "stale golden files: commit the regenerated tests/golden/*.json"; exit 1; }

if [[ "${EECS_SOAK:-0}" == "1" ]]; then
  echo "==> telemetry soak (EECS_SOAK=1)"
  cargo test -q --workspace -- --ignored
fi

echo "==> cargo clippy"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (pipeline trajectory + kernel regression gate)"
# One timed iteration per bench: enough to prove the harness runs end to
# end and regenerates a well-formed BENCH_pipeline.json at the repo root.
# The committed report is saved first and used as the regression baseline:
# check_bench compares the per-kernel optimized-vs-reference ratios (which
# are host-independent, unlike raw ns) and fails on a kernel regression
# beyond the tolerance. The generous tolerance absorbs 1-iteration noise.
bench_baseline="$(mktemp)"
cp BENCH_pipeline.json "$bench_baseline"
EECS_BENCH_ITERS=1 cargo bench -q -p eecs-bench --bench pipeline -- --bench
cargo run -q --release -p eecs-bench --bin check_bench -- \
  --baseline "$bench_baseline" --tolerance 0.5
# The smoke run's 1-iteration timings are noise: restore the committed
# multi-iteration report so CI leaves the tree clean.
cp "$bench_baseline" BENCH_pipeline.json
rm -f "$bench_baseline"

echo "==> sweep smoke (2 workers, kill after 2 cells, resume)"
# Tiny budget × fault-seed grid through the sweep engine: a 2-worker run
# aborted mid-sweep and resumed from its manifest must merge to bytes
# identical to an uninterrupted run, with no completed cell re-executing.
cargo run -q --release -p eecs-bench --bin sweep_smoke

echo "==> serve smoke (mission service: kill mid-queue, resume, replay)"
# Per seed, a chaotic 6-mission batch through the admission-controlled
# service: a 2-worker journaled run killed after 2 missions and resumed
# must produce a service trace byte-identical to an uninterrupted
# 1-worker run, with no completed mission re-executing.
cargo run -q --release -p eecs-bench --bin serve_smoke -- 1 2 3

echo "==> fault-matrix smoke (sensor + network + controller chaos)"
# One combined-chaos mission per seed: must complete, stay physical,
# record the scheduled failover, and replay bit-for-bit.
cargo run -q --release -p eecs-bench --bin chaos_smoke -- 1 2 3

echo "==> partition smoke (islands, split-brain election, heal reconcile)"
# Per seed, a clean two-island split and a flapping split over lossy
# links: each must elect an acting seat, reconcile on heal, record no
# crash failover, and replay bit-for-bit.
cargo run -q --release -p eecs-bench --bin chaos_smoke -- --partition 1 2 3

echo "==> integrity smoke (wire corruption storm + torn checkpoint write)"
# Per seed, a bit-flip corruption storm over lossy links plus a torn
# write of the newest checkpoint generation under a controller crash:
# corrupt frames must be rejected (never consumed) with their energy
# charged, the restore must roll back exactly one generation, and the
# whole run must replay bit-for-bit.
cargo run -q --release -p eecs-bench --bin chaos_smoke -- --corruption 1 2 3

echo "==> churn smoke (heterogeneous fleet, mid-mission leave/rejoin, crash)"
# Per seed, a flagship/midrange/lowend fleet over lossy links with a
# scheduled controller crash and a churn plan that removes one camera
# for two rounds: the failover must land on schedule, planning must
# route around the departure (the absent camera never appears in a
# round's plan), the camera must rejoin, and the run must replay
# bit-for-bit.
cargo run -q --release -p eecs-bench --bin chaos_smoke -- --churn 1 2 3

echo "CI OK"
