//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency implements the subset of proptest this workspace uses: the
//! `proptest!` macro, range / tuple / `prop::collection::vec` strategies,
//! `prop_map`, `ProptestConfig::with_cases`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its index and seed; rerun
//!   with the same build to reproduce (generation is deterministic, seeded
//!   from the test's name).
//! * **No persistence** — there is no failure-regression file.

use std::fmt;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64 generator seeded from the property's name, so every
    //  property has its own reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary label (typically the test name).
        pub fn deterministic(label: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            if n == 0 {
                0
            } else {
                ((self.next_u64() as u128 * n as u128) >> 64) as usize
            }
        }
    }
}

use test_runner::TestRng;

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )+};
}
impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection size specification: an exact count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::test_runner::TestRng;
    use super::{SizeRange, Strategy};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` may be an exact `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with a size drawn from
    /// `size`. Duplicate keys collapse, so maps may come out smaller.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy: `size` may be an exact `usize` or a `Range<usize>`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::test_runner::TestRng;
    use super::Strategy;

    /// Strategy for `Option<S::Value>`, `None` roughly half the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        //! Namespace mirror of proptest's `prop` module.
        pub use crate::collection;
        pub use crate::option;
    }
}

/// The property-test macro. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments take the form `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
}

/// Property-scoped assertion: fails the current case (with its index)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = prop::collection::vec(-3.0..3.0f64, 4 * 5);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|x| (-3.0..3.0).contains(x)));
        let sized = prop::collection::vec(0..10usize, 1..6);
        for _ in 0..100 {
            let v = sized.sample(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = (0.0..1.0f64, 1..5usize).prop_map(|(x, n)| vec![x; n]);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0.0..1.0f64, mut n in 1..4usize) {
            n += 1;
            prop_assert!(x < 1.0);
            prop_assert!(n >= 2, "n was {}", n);
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}
