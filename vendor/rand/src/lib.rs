//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency provides the (deterministic) subset of the `rand` 0.10 API
//! the workspace actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`RngExt`]'s `random_range` /
//! `random_bool`. The generator is xoshiro256** seeded via SplitMix64 —
//! statistically strong, `Clone`, and stable across runs and platforms,
//! which is all the reproduction needs (every use site seeds explicitly;
//! there is deliberately no OS-entropy constructor here).

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// `u64` → uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )+};
}
impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                debug_assert!(span > 0);
                // Widening multiply: unbiased enough for simulation use and
                // exactly uniform when the span divides 2^64.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}
impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.random_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.random_range(1..=4u32);
            assert!((1..=4).contains(&j));
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
