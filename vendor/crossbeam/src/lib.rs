//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io; the workspace only
//! uses `crossbeam::thread::scope`, which std has provided natively since
//! Rust 1.63. This shim exposes the crossbeam-style API (the spawned
//! closure receives the scope, `scope` returns a `Result`) on top of
//! [`std::thread::scope`].

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Error type of [`scope`]: the payload of a propagated panic.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Crossbeam reports child panics as `Err`; `std::thread::scope`
    /// resumes the panic on join instead, so this shim never actually
    /// returns `Err` — callers' `.expect(…)` behave identically either
    /// way (the process panics with the child's payload).
    pub fn scope<'env, F, T>(f: F) -> Result<T, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawns_receive_the_scope() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
