//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency provides the bench-definition API the workspace uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`) with a deliberately
//! simple runner: each benchmark body is timed over a handful of
//! iterations and the mean is printed. There is no statistical analysis,
//! warm-up, or HTML report — enough to smoke-run and time the benches,
//! not to publish numbers.
//!
//! Invoked without `--bench` (e.g. if a bench target is ever built and run
//! by `cargo test`), the harness exits immediately so test runs stay fast.

use std::time::Instant;

/// Re-export so `criterion::black_box` resolves.
pub use std::hint::black_box;

/// Default iterations per benchmark body (after one untimed call).
const ITERS: u32 = 3;

/// Iterations per benchmark body: `EECS_BENCH_ITERS` overrides the
/// default (minimum 1) so CI smoke runs can time a single iteration.
fn iters() -> u32 {
    std::env::var("EECS_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|n| n.max(1))
        .unwrap_or(ITERS)
}

/// Benchmark identifier: function name + parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Names accepted where criterion takes `&str` or `BenchmarkId`.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn label(self) -> String {
        self
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    mean_ns: Option<u128>,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // untimed warm-up call
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let mean = start.elapsed() / self.iters;
        self.mean_ns = Some(mean.as_nanos());
        println!("  time: {mean:?} (mean of {} iterations)", self.iters);
    }
}

/// The benchmark harness. Collects each benchmark's mean time so custom
/// `main`s can post-process the run (e.g. emit a machine-readable report).
pub struct Criterion {
    results: Vec<(String, u128)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        println!("bench {label}");
        let mut b = Bencher {
            iters: iters(),
            mean_ns: None,
        };
        f(&mut b);
        if let Some(mean_ns) = b.mean_ns {
            self.results.push((label, mean_ns));
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.label(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            prefix: name.to_string(),
            parent: self,
        }
    }

    /// `(label, mean nanoseconds)` of every benchmark run so far, in run
    /// order. Group benchmarks are labelled `group/name`.
    pub fn results(&self) -> &[(String, u128)] {
        &self.results
    }

    /// The mean nanoseconds of the benchmark labelled `label`, if it ran.
    pub fn mean_ns(&self, label: &str) -> Option<u128> {
        self.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, ns)| ns)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed (override with `EECS_BENCH_ITERS`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.prefix, name.label());
        self.parent.run_one(label, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.prefix, id.label);
        self.parent.run_one(label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Defines a group function calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Defines `main`, running all groups when invoked with `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; anything else (notably a
            // bench target executed during `cargo test`) is a smoke
            // invocation and must stay fast.
            if !::std::env::args().any(|a| a == "--bench") {
                println!("criterion shim: pass --bench (cargo bench) to run");
                return;
            }
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("id-label", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_benches_and_records_results() {
        let mut c = Criterion::new();
        benches(&mut c);
        assert_eq!(c.results().len(), 3);
        assert!(c.mean_ns("sum").is_some());
        assert!(c.mean_ns("grouped/double/21").is_some());
        assert!(c.mean_ns("grouped/id-label").is_some());
        assert!(c.mean_ns("missing").is_none());
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("a", "b").label, "a/b");
        assert_eq!("plain".label(), "plain");
    }
}
